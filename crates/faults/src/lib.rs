//! # rbr-faults
//!
//! A deterministic, seed-driven fault model for the middleware carrying
//! the redundant-request protocol's control traffic.
//!
//! The paper's protocol assumes perfect middleware: submissions reach
//! remote batch schedulers instantly and the cancellation callback fires
//! with zero latency the moment one copy starts. This crate models the
//! ways real grid middleware breaks that assumption, so the simulator
//! can quantify how much of redundancy's benefit survives imperfect
//! plumbing:
//!
//! * **message delay** — submit and cancel messages take time to arrive,
//!   drawn from a configurable [`Delay`] distribution;
//! * **message loss** — each message is dropped with a configurable
//!   probability; lost *submissions* are retried with exponential
//!   backoff (bounded by [`FaultSpec::max_retries`]), lost
//!   *cancellations* are fire-and-forget, leaving orphaned copies to run
//!   as zombies;
//! * **cluster outages** — scheduled down/recover windows during which a
//!   cluster's scheduler loses all state, running copies are killed, and
//!   message delivery is suspended.
//!
//! ## Determinism contract
//!
//! Every random decision — loss coin-flips, delay samples, and nothing
//! else — is drawn from a dedicated [`SeedSequence`] stream owned by
//! [`FaultModel`]. The grid simulator hands it `seed.child(n_clusters + 1)`,
//! a stream disjoint from the per-cluster workload streams
//! (`child(0..n)`) and the redundancy/selection stream (`child(n)`).
//! Consequences, relied on by tests and experiments:
//!
//! 1. **Disabled faults are invisible.** When [`FaultSpec::is_disabled`]
//!    holds, the simulator takes its original code path and never draws
//!    from the fault stream, so results are bit-identical to a build
//!    without this crate.
//! 2. **Runs are reproducible.** The same master seed and config produce
//!    the same fault schedule, event order, and metrics, on any machine.
//! 3. **Treatment pairs with baseline.** Enabling faults consumes no
//!    draws from the workload or selection streams, so a faulty run and
//!    a perfect-middleware run on the same master seed see identical job
//!    arrivals and identical redundancy decisions — the paper's paired
//!    experiment design extends to fault sweeps.
//!
//! The draw *sequence* for one message is fixed by the spec alone (one
//! coin per delivery attempt, one delay sample for the delivering
//! attempt), never by scheduler state, which keeps the stream aligned
//! across configurations that only differ downstream.

use rand::rngs::StdRng;
use rbr_simcore::{unit, Duration, SeedSequence, SimTime};

/// Distribution of a message's in-flight latency.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Delay {
    /// Delivered at the send instant (the paper's assumption).
    Zero,
    /// Constant latency.
    Fixed(Duration),
    /// Exponentially distributed latency with the given mean.
    Exp {
        /// Mean latency.
        mean: Duration,
    },
    /// Uniform latency in `[lo, hi]`.
    Uniform {
        /// Minimum latency.
        lo: Duration,
        /// Maximum latency.
        hi: Duration,
    },
}

impl Delay {
    /// Draws one latency. [`Delay::Zero`] consumes no randomness; every
    /// other variant consumes exactly one draw.
    pub fn sample(&self, rng: &mut StdRng) -> Duration {
        match *self {
            Delay::Zero => Duration::ZERO,
            Delay::Fixed(d) => d,
            Delay::Exp { mean } => {
                // Inverse-CDF on a [0, 1) draw: u < 1 keeps ln finite.
                let u = unit(rng);
                mean.scale(-(1.0 - u).ln())
            }
            Delay::Uniform { lo, hi } => {
                let u = unit(rng);
                lo + (hi - lo).scale(u)
            }
        }
    }

    /// True for the no-latency distribution.
    pub fn is_zero(&self) -> bool {
        matches!(self, Delay::Zero)
    }

    /// Panics on invalid parameters (negative handled by `Duration`'s
    /// own invariants; this checks ordering and finiteness).
    fn validate(&self, what: &str) {
        if let Delay::Uniform { lo, hi } = self {
            assert!(lo <= hi, "{what} delay: uniform lo must not exceed hi");
        }
    }
}

/// Batching of cancellation messages into shared middleware
/// transactions: instead of dispatching each cancel as its own WS-GRAM
/// round-trip, the metascheduler holds pending cancels and flushes them
/// `size` at a time — or after `deadline`, whichever comes first — as
/// one transaction. Amortizes the per-transaction middleware cost (see
/// `rbr-middleware`'s batch model) at the price of cancellation latency,
/// which the fault path turns into extra zombie compute.
///
/// `size = 1` is the paper's per-op protocol and is treated as fully
/// disabled: the simulator takes its original code path.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BatchSpec {
    /// Operations per transaction; 1 disables batching.
    pub size: u32,
    /// Maximum time the oldest pending operation waits before the batch
    /// is flushed anyway. Must be positive when `size > 1`.
    pub deadline: Duration,
}

impl Default for BatchSpec {
    fn default() -> Self {
        BatchSpec {
            size: 1,
            deadline: Duration::ZERO,
        }
    }
}

impl BatchSpec {
    /// A batch of `size` ops flushed at latest `deadline` after the
    /// oldest pending op.
    pub fn of(size: u32, deadline: Duration) -> Self {
        BatchSpec { size, deadline }
    }

    /// True for the per-op protocol (batching has no effect).
    pub fn is_disabled(&self) -> bool {
        self.size <= 1
    }

    fn validate(&self) {
        assert!(self.size >= 1, "batch size must be at least 1");
        if self.size > 1 {
            assert!(
                !self.deadline.is_zero(),
                "batched cancels need a positive flush deadline"
            );
        }
    }
}

/// One scheduled cluster outage: at `down` the cluster's scheduler loses
/// all state (queued requests evaporate, running copies are killed) and
/// message delivery to the cluster is suspended until `recover`.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Outage {
    /// Index of the affected cluster.
    pub cluster: usize,
    /// Instant the cluster goes down.
    pub down: SimTime,
    /// Instant the cluster accepts traffic again. Must exceed `down`.
    pub recover: SimTime,
}

/// Full fault configuration of one run. [`FaultSpec::default`] is the
/// perfect middleware of the paper: no loss, no delay, no outages.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultSpec {
    /// Probability each submission delivery attempt is lost.
    pub submit_loss: f64,
    /// Probability a cancellation message is lost (no retry: orphaned
    /// copies run as zombies until cancelled late or complete).
    pub cancel_loss: f64,
    /// Latency of submission messages.
    pub submit_delay: Delay,
    /// Latency of cancellation messages.
    pub cancel_delay: Delay,
    /// Retries after a lost submission before giving up. Home-cluster
    /// submissions escalate to an out-of-band guaranteed delivery after
    /// the last retry (jobs never vanish); remote copies are dropped.
    pub max_retries: u32,
    /// Initial retry backoff; attempt `k` waits `2^(k-1)` times this.
    pub retry_backoff: Duration,
    /// Scheduled cluster outages. Must be disjoint per cluster.
    pub outages: Vec<Outage>,
    /// Batching of cancellation messages into shared transactions.
    pub cancel_batch: BatchSpec,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            submit_loss: 0.0,
            cancel_loss: 0.0,
            submit_delay: Delay::Zero,
            cancel_delay: Delay::Zero,
            max_retries: 3,
            retry_backoff: Duration::from_secs(5.0),
            outages: Vec::new(),
            cancel_batch: BatchSpec::default(),
        }
    }
}

impl FaultSpec {
    /// True when the spec is the perfect middleware: the simulator then
    /// takes its original code path and results are bit-identical to a
    /// faultless build.
    pub fn is_disabled(&self) -> bool {
        self.submit_loss == 0.0
            && self.cancel_loss == 0.0
            && self.submit_delay.is_zero()
            && self.cancel_delay.is_zero()
            && self.outages.is_empty()
            && self.cancel_batch.is_disabled()
    }

    /// Validates the spec against a platform of `n_clusters` clusters.
    ///
    /// # Panics
    /// Panics on probabilities outside `[0, 1]`, an out-of-range outage
    /// cluster, a non-positive outage window, or overlapping outages on
    /// one cluster.
    pub fn validate(&self, n_clusters: usize) {
        for (p, what) in [(self.submit_loss, "submit"), (self.cancel_loss, "cancel")] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{what} loss probability must be in [0, 1], got {p}"
            );
        }
        self.submit_delay.validate("submit");
        self.cancel_delay.validate("cancel");
        self.cancel_batch.validate();
        if self.submit_loss > 0.0 {
            assert!(
                !self.retry_backoff.is_zero(),
                "retry backoff must be positive when submissions can be lost"
            );
        }
        assert!(
            self.max_retries <= 32,
            "max_retries beyond 32 would overflow the exponential backoff"
        );
        let mut per_cluster: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); n_clusters];
        for o in &self.outages {
            assert!(
                o.cluster < n_clusters,
                "outage cluster {} out of range (platform has {n_clusters})",
                o.cluster
            );
            assert!(
                o.recover > o.down,
                "outage on cluster {} must recover after it goes down",
                o.cluster
            );
            per_cluster[o.cluster].push((o.down, o.recover));
        }
        for (c, windows) in per_cluster.iter_mut().enumerate() {
            windows.sort();
            for pair in windows.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "overlapping outages on cluster {c}");
            }
        }
    }
}

/// Outcome of dispatching one submission through the faulty middleware.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubmitOutcome {
    /// Instant the submission reaches the scheduler, or `None` if every
    /// attempt was lost and the copy was dropped.
    pub delivery: Option<SimTime>,
    /// Delivery attempts that were lost along the way.
    pub lost_attempts: u32,
}

/// Outcome of dispatching one cancellation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CancelOutcome {
    /// Instant the cancellation reaches the scheduler, or `None` if the
    /// message was lost (cancellations are fire-and-forget).
    pub delivery: Option<SimTime>,
}

/// The runtime fault sampler: owns the spec and the dedicated random
/// stream. See the crate docs for the determinism contract.
#[derive(Clone, Debug)]
pub struct FaultModel {
    spec: FaultSpec,
    rng: StdRng,
}

impl FaultModel {
    /// Builds the model on its dedicated seed stream.
    pub fn new(spec: FaultSpec, stream: SeedSequence) -> Self {
        FaultModel {
            spec,
            rng: stream.rng(),
        }
    }

    /// The configuration this model samples from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Plans delivery of a submission sent at `now`.
    ///
    /// Attempt `k` (0-based) is dispatched once the sender's exponential
    /// backoff has elapsed — `retry_backoff · (2^k − 1)` after `now` —
    /// and survives with probability `1 − submit_loss`. The first
    /// surviving attempt delivers after one sampled [`Delay`]. When all
    /// `max_retries + 1` attempts are lost: with `guaranteed` (home
    /// copies) one final out-of-band delivery happens after a last
    /// backoff period, otherwise the copy is dropped.
    pub fn plan_submit(&mut self, now: SimTime, guaranteed: bool) -> SubmitOutcome {
        let mut lost = 0u32;
        for attempt in 0..=self.spec.max_retries {
            let dispatched = now + self.backoff_until(attempt);
            if self.spec.submit_loss < 1.0
                && (self.spec.submit_loss <= 0.0 || unit(&mut self.rng) >= self.spec.submit_loss)
            {
                let latency = self.spec.submit_delay.sample(&mut self.rng);
                return SubmitOutcome {
                    delivery: Some(dispatched + latency),
                    lost_attempts: lost,
                };
            }
            lost += 1;
        }
        if guaranteed {
            let dispatched = now + self.backoff_until(self.spec.max_retries + 1);
            let latency = self.spec.submit_delay.sample(&mut self.rng);
            SubmitOutcome {
                delivery: Some(dispatched + latency),
                lost_attempts: lost,
            }
        } else {
            SubmitOutcome {
                delivery: None,
                lost_attempts: lost,
            }
        }
    }

    /// Plans delivery of a cancellation sent at `now`: lost with
    /// probability `cancel_loss`, otherwise delivered after one sampled
    /// [`Delay`].
    pub fn plan_cancel(&mut self, now: SimTime) -> CancelOutcome {
        let lost = self.spec.cancel_loss >= 1.0
            || (self.spec.cancel_loss > 0.0 && unit(&mut self.rng) < self.spec.cancel_loss);
        if lost {
            CancelOutcome { delivery: None }
        } else {
            let latency = self.spec.cancel_delay.sample(&mut self.rng);
            CancelOutcome {
                delivery: Some(now + latency),
            }
        }
    }

    /// Cumulative backoff before attempt `k` is dispatched:
    /// `retry_backoff · (2^k − 1)`.
    fn backoff_until(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            Duration::ZERO
        } else {
            self.spec
                .retry_backoff
                .scale((1u64 << attempt) as f64 - 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(spec: FaultSpec) -> FaultModel {
        FaultModel::new(spec, SeedSequence::new(99).child(5))
    }

    #[test]
    fn default_spec_is_disabled_and_valid() {
        let spec = FaultSpec::default();
        assert!(spec.is_disabled());
        spec.validate(4);
    }

    #[test]
    fn any_single_fault_enables_the_spec() {
        for spec in [
            FaultSpec {
                submit_loss: 0.1,
                ..FaultSpec::default()
            },
            FaultSpec {
                cancel_loss: 0.1,
                ..FaultSpec::default()
            },
            FaultSpec {
                cancel_delay: Delay::Fixed(Duration::from_secs(1.0)),
                ..FaultSpec::default()
            },
            FaultSpec {
                outages: vec![Outage {
                    cluster: 0,
                    down: SimTime::from_secs(10.0),
                    recover: SimTime::from_secs(20.0),
                }],
                ..FaultSpec::default()
            },
            FaultSpec {
                cancel_batch: BatchSpec::of(8, Duration::from_secs(30.0)),
                ..FaultSpec::default()
            },
        ] {
            assert!(!spec.is_disabled(), "{spec:?}");
        }
    }

    #[test]
    fn perfect_middleware_delivers_instantly_without_draws() {
        let mut m = model(FaultSpec::default());
        let now = SimTime::from_secs(100.0);
        let s = m.plan_submit(now, false);
        assert_eq!(s.delivery, Some(now));
        assert_eq!(s.lost_attempts, 0);
        let c = m.plan_cancel(now);
        assert_eq!(c.delivery, Some(now));
        // No randomness consumed: a fresh model on the same stream draws
        // the same next value.
        let mut fresh = model(FaultSpec::default());
        assert_eq!(
            m.plan_cancel(SimTime::ZERO).delivery,
            fresh.plan_cancel(SimTime::ZERO).delivery
        );
    }

    #[test]
    fn certain_loss_drops_remote_and_escalates_home() {
        let spec = FaultSpec {
            submit_loss: 1.0,
            max_retries: 2,
            retry_backoff: Duration::from_secs(5.0),
            ..FaultSpec::default()
        };
        let mut m = model(spec);
        let now = SimTime::from_secs(50.0);
        let remote = m.plan_submit(now, false);
        assert_eq!(remote.delivery, None);
        assert_eq!(remote.lost_attempts, 3);
        let home = m.plan_submit(now, true);
        // Escalation dispatches after backoff 5·(2³−1) = 35 s.
        assert_eq!(home.delivery, Some(now + Duration::from_secs(35.0)));
        assert_eq!(home.lost_attempts, 3);
    }

    #[test]
    fn retries_follow_exponential_backoff() {
        let spec = FaultSpec {
            submit_loss: 0.5,
            max_retries: 8,
            retry_backoff: Duration::from_secs(2.0),
            ..FaultSpec::default()
        };
        let mut m = model(spec);
        let now = SimTime::from_secs(0.0);
        for _ in 0..200 {
            let s = m.plan_submit(now, true);
            let t = s.delivery.expect("guaranteed delivery");
            // Delivery instant must sit exactly on a backoff boundary
            // (zero delay distribution).
            let k = s.lost_attempts;
            let expected = now + Duration::from_secs(2.0 * ((1u64 << k) as f64 - 1.0));
            assert_eq!(t, expected, "attempt {k}");
        }
    }

    #[test]
    fn cancel_loss_rate_matches_probability() {
        let spec = FaultSpec {
            cancel_loss: 0.3,
            ..FaultSpec::default()
        };
        let mut m = model(spec);
        let n = 20_000;
        let lost = (0..n)
            .filter(|_| m.plan_cancel(SimTime::ZERO).delivery.is_none())
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn delay_distributions_sample_sanely() {
        let mut rng = SeedSequence::new(3).child(0).rng();
        assert_eq!(Delay::Zero.sample(&mut rng), Duration::ZERO);
        assert_eq!(
            Delay::Fixed(Duration::from_secs(4.0)).sample(&mut rng),
            Duration::from_secs(4.0)
        );
        let exp = Delay::Exp {
            mean: Duration::from_secs(10.0),
        };
        let mean: f64 = (0..50_000)
            .map(|_| exp.sample(&mut rng).as_secs())
            .sum::<f64>()
            / 50_000.0;
        assert!((mean - 10.0).abs() < 0.5, "exp mean {mean}");
        let uni = Delay::Uniform {
            lo: Duration::from_secs(1.0),
            hi: Duration::from_secs(3.0),
        };
        for _ in 0..1_000 {
            let d = uni.sample(&mut rng).as_secs();
            assert!((1.0..=3.0).contains(&d), "uniform sample {d}");
        }
    }

    #[test]
    fn identical_streams_give_identical_plans() {
        let spec = FaultSpec {
            submit_loss: 0.4,
            cancel_loss: 0.4,
            submit_delay: Delay::Exp {
                mean: Duration::from_secs(2.0),
            },
            cancel_delay: Delay::Uniform {
                lo: Duration::ZERO,
                hi: Duration::from_secs(9.0),
            },
            ..FaultSpec::default()
        };
        let mut a = model(spec.clone());
        let mut b = model(spec);
        for i in 0..500 {
            let now = SimTime::from_secs(i as f64);
            assert_eq!(
                a.plan_submit(now, i % 2 == 0),
                b.plan_submit(now, i % 2 == 0)
            );
            assert_eq!(a.plan_cancel(now), b.plan_cancel(now));
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_rejected() {
        FaultSpec {
            submit_loss: 1.5,
            ..FaultSpec::default()
        }
        .validate(1);
    }

    #[test]
    #[should_panic(expected = "overlapping outages")]
    fn overlapping_outages_rejected() {
        FaultSpec {
            outages: vec![
                Outage {
                    cluster: 0,
                    down: SimTime::from_secs(0.0),
                    recover: SimTime::from_secs(100.0),
                },
                Outage {
                    cluster: 0,
                    down: SimTime::from_secs(50.0),
                    recover: SimTime::from_secs(150.0),
                },
            ],
            ..FaultSpec::default()
        }
        .validate(2);
    }

    #[test]
    fn unit_batch_is_disabled_even_with_deadline() {
        let spec = FaultSpec {
            cancel_batch: BatchSpec::of(1, Duration::from_secs(60.0)),
            ..FaultSpec::default()
        };
        assert!(spec.is_disabled());
        spec.validate(2);
    }

    #[test]
    #[should_panic(expected = "positive flush deadline")]
    fn batching_requires_a_deadline() {
        FaultSpec {
            cancel_batch: BatchSpec::of(4, Duration::ZERO),
            ..FaultSpec::default()
        }
        .validate(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn outage_cluster_bounds_checked() {
        FaultSpec {
            outages: vec![Outage {
                cluster: 7,
                down: SimTime::ZERO,
                recover: SimTime::from_secs(1.0),
            }],
            ..FaultSpec::default()
        }
        .validate(2);
    }
}
