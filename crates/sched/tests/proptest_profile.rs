//! Property tests for the availability profile: `earliest_fit` always
//! returns a feasible slot, and reservations never drive capacity
//! negative or above the machine size.

use proptest::prelude::*;
use rbr_sched::Profile;
use rbr_simcore::{Duration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reserving at `earliest_fit` never panics and keeps every level in
    /// `[0, total]`, for arbitrary mixes of widths and durations.
    #[test]
    fn reserve_at_fit_is_always_feasible(
        total in 1u32..256,
        jobs in prop::collection::vec((1u32..256, 1u64..100_000), 1..80),
    ) {
        let mut p = Profile::new(SimTime::ZERO, total, total);
        for (nodes, dur_us) in jobs {
            let nodes = nodes.min(total).max(1);
            let dur = Duration::from_micros(dur_us);
            let start = p.earliest_fit(SimTime::ZERO, dur, nodes);
            // Feasibility: the returned window really has the capacity
            // (reserve panics otherwise, which would fail the test).
            p.reserve(start, dur, nodes);
        }
        for &(_, level) in p.steps() {
            prop_assert!(level <= total);
        }
    }

    /// earliest_fit is monotone in `not_before`: asking later never
    /// returns an earlier slot.
    #[test]
    fn fit_is_monotone_in_not_before(
        total in 2u32..128,
        occupied in prop::collection::vec((1u32..128, 1u64..50_000, 0u64..200_000), 0..30),
        nodes in 1u32..128,
        dur_us in 1u64..50_000,
        t1 in 0u64..100_000,
        dt in 0u64..100_000,
    ) {
        let mut p = Profile::new(SimTime::ZERO, total, total);
        for (w, d, s) in occupied {
            let w = w.min(total);
            let d = Duration::from_micros(d);
            // Place occupations at their earliest fit from `s` so the
            // profile stays feasible by construction.
            let anchor = p.earliest_fit(SimTime::from_micros(s), d, w);
            p.reserve(anchor, d, w);
        }
        let nodes = nodes.min(total);
        let dur = Duration::from_micros(dur_us);
        let early = p.earliest_fit(SimTime::from_micros(t1), dur, nodes);
        let late = p.earliest_fit(SimTime::from_micros(t1 + dt), dur, nodes);
        prop_assert!(late >= early);
        // And both results are at or after their respective lower bounds.
        prop_assert!(early >= SimTime::from_micros(t1));
        prop_assert!(late >= SimTime::from_micros(t1 + dt));
    }

    /// A wider or longer request never fits earlier than a smaller one.
    #[test]
    fn fit_is_monotone_in_demand(
        total in 2u32..128,
        occupied in prop::collection::vec((1u32..128, 1u64..50_000, 0u64..100_000), 0..30),
        nodes in 1u32..64,
        dur_us in 1u64..50_000,
    ) {
        let mut p = Profile::new(SimTime::ZERO, total, total);
        for (w, d, s) in occupied {
            let w = w.min(total);
            let d = Duration::from_micros(d);
            let anchor = p.earliest_fit(SimTime::from_micros(s), d, w);
            p.reserve(anchor, d, w);
        }
        let nodes = nodes.min(total - 1);
        let dur = Duration::from_micros(dur_us);
        let small = p.earliest_fit(SimTime::ZERO, dur, nodes);
        let wider = p.earliest_fit(SimTime::ZERO, dur, nodes + 1);
        let longer = p.earliest_fit(SimTime::ZERO, dur + Duration::from_micros(1), nodes);
        prop_assert!(wider >= small);
        prop_assert!(longer >= small);
    }
}
