//! Property tests for the multi-queue scheduler: capacity, liveness, and
//! priority invariants under arbitrary request streams spread across
//! queues.

use proptest::prelude::*;
use rbr_sched::{MultiQueueScheduler, Request, RequestId};
use rbr_simcore::{Duration, EventQueue, SimTime};

#[derive(Clone, Debug)]
struct GenReq {
    nodes: u32,
    estimate_s: u32,
    run_fraction: f64,
    gap_s: u32,
    queue: usize,
}

fn gen_reqs(max: usize, n_queues: usize) -> impl Strategy<Value = Vec<GenReq>> {
    prop::collection::vec(
        (
            1u32..=16,
            1u32..=1_000,
            0.1f64..=1.0,
            0u32..=20,
            0..n_queues,
        )
            .prop_map(|(nodes, estimate_s, run_fraction, gap_s, queue)| GenReq {
                nodes,
                estimate_s,
                run_fraction,
                gap_s,
                queue,
            }),
        1..max,
    )
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Submit(usize),
    Complete(usize),
}

fn drive(total_nodes: u32, n_queues: usize, reqs: &[GenReq]) {
    let mut sched = MultiQueueScheduler::new(total_nodes, n_queues);
    let mut engine: EventQueue<Ev> = EventQueue::new();
    let mut t = SimTime::ZERO;
    for (i, r) in reqs.iter().enumerate() {
        t += Duration::from_secs(r.gap_s as f64);
        engine.push(t, Ev::Submit(i));
    }

    let mut starts: Vec<RequestId> = Vec::new();
    let mut started = vec![false; reqs.len()];
    let mut finished = vec![false; reqs.len()];
    let mut busy: i64 = 0;

    while let Some((now, ev)) = engine.pop() {
        starts.clear();
        match ev {
            Ev::Submit(i) => {
                let r = &reqs[i];
                sched.submit(
                    now,
                    r.queue,
                    Request::new(
                        RequestId(i as u64),
                        r.nodes,
                        Duration::from_secs(r.estimate_s as f64),
                        now,
                    ),
                    &mut starts,
                );
            }
            Ev::Complete(i) => {
                busy -= reqs[i].nodes as i64;
                finished[i] = true;
                sched.complete(now, RequestId(i as u64), &mut starts);
            }
        }
        for id in starts.drain(..) {
            let i = id.0 as usize;
            assert!(!started[i], "request {i} started twice");
            started[i] = true;
            busy += reqs[i].nodes as i64;
            assert!(busy <= total_nodes as i64, "capacity exceeded");
            let actual =
                Duration::from_secs((reqs[i].estimate_s as f64 * reqs[i].run_fraction).max(1e-6));
            engine.push(now + actual, Ev::Complete(i));
        }
        assert_eq!(sched.free_nodes() as i64, total_nodes as i64 - busy);
    }

    for (i, _) in reqs.iter().enumerate() {
        assert!(started[i] && finished[i], "request {i} never ran");
    }
    assert_eq!(sched.total_queued(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn two_queues_respect_invariants(reqs in gen_reqs(60, 2)) {
        drive(16, 2, &reqs);
    }

    #[test]
    fn four_queues_respect_invariants(reqs in gen_reqs(60, 4)) {
        drive(16, 4, &reqs);
    }

    /// With a single queue, the multi-queue scheduler is exactly EASY:
    /// start times agree event for event.
    #[test]
    fn single_queue_equals_easy(reqs in gen_reqs(40, 1)) {
        use rbr_sched::Algorithm;
        // Drive both side by side and compare start sets per event.
        let mut mq = MultiQueueScheduler::new(16, 1);
        let mut easy = Algorithm::Easy.build(16);
        let mut engine: EventQueue<Ev> = EventQueue::new();
        let mut t = SimTime::ZERO;
        for (i, r) in reqs.iter().enumerate() {
            t += Duration::from_secs(r.gap_s as f64);
            engine.push(t, Ev::Submit(i));
        }
        let mut s1: Vec<RequestId> = Vec::new();
        let mut s2: Vec<RequestId> = Vec::new();
        while let Some((now, ev)) = engine.pop() {
            s1.clear();
            s2.clear();
            match ev {
                Ev::Submit(i) => {
                    let r = &reqs[i];
                    let req = Request::new(
                        RequestId(i as u64),
                        r.nodes,
                        Duration::from_secs(r.estimate_s as f64),
                        now,
                    );
                    mq.submit(now, 0, req, &mut s1);
                    easy.submit(now, req, &mut s2);
                }
                Ev::Complete(i) => {
                    mq.complete(now, RequestId(i as u64), &mut s1);
                    easy.complete(now, RequestId(i as u64), &mut s2);
                }
            }
            prop_assert_eq!(&s1, &s2, "divergence at {}", now);
            for id in s1.drain(..) {
                let i = id.0 as usize;
                let actual = Duration::from_secs(
                    (reqs[i].estimate_s as f64 * reqs[i].run_fraction).max(1e-6),
                );
                engine.push(now + actual, Ev::Complete(i));
            }
        }
    }
}
