//! Property tests for the schedulers: for arbitrary request streams with
//! random cancellations and early completions, every algorithm must
//! respect machine capacity, start every surviving request exactly once,
//! and never lose or duplicate work.

use proptest::prelude::*;
use rbr_sched::{Algorithm, Request, RequestId};
use rbr_simcore::{Duration, EventQueue, SimTime};

/// A generated request: width, requested time, actual fraction of the
/// request it really runs, inter-arrival gap, and whether the submitter
/// cancels it shortly after submission.
#[derive(Clone, Debug)]
struct GenReq {
    nodes: u32,
    estimate_s: u32,
    run_fraction: f64,
    gap_s: u32,
    cancel_after_s: Option<u32>,
}

fn gen_reqs(max: usize) -> impl Strategy<Value = Vec<GenReq>> {
    prop::collection::vec(
        (
            1u32..=32,
            1u32..=2_000,
            0.05f64..=1.0,
            0u32..=30,
            prop::option::weighted(0.2, 0u32..=500),
        )
            .prop_map(
                |(nodes, estimate_s, run_fraction, gap_s, cancel_after_s)| GenReq {
                    nodes,
                    estimate_s,
                    run_fraction,
                    gap_s,
                    cancel_after_s,
                },
            ),
        1..max,
    )
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Submit(usize),
    Cancel(usize),
    Complete(usize),
}

/// Drives one scheduler through the generated stream and checks the
/// invariants as it goes. Returns (started, cancelled) counts.
fn drive(alg: Algorithm, total_nodes: u32, reqs: &[GenReq]) -> (usize, usize) {
    let mut sched = alg.build(total_nodes);
    let mut engine: EventQueue<Ev> = EventQueue::new();
    let mut t = SimTime::ZERO;
    for (i, r) in reqs.iter().enumerate() {
        t += Duration::from_secs(r.gap_s as f64);
        engine.push(t, Ev::Submit(i));
        if let Some(after) = r.cancel_after_s {
            engine.push(t + Duration::from_secs(after as f64), Ev::Cancel(i));
        }
    }

    let mut starts: Vec<RequestId> = Vec::new();
    let mut started = vec![false; reqs.len()];
    let mut cancelled = vec![false; reqs.len()];
    let mut finished = vec![false; reqs.len()];
    let mut busy: i64 = 0;

    while let Some((now, ev)) = engine.pop() {
        starts.clear();
        match ev {
            Ev::Submit(i) => {
                let r = &reqs[i];
                let req = Request::new(
                    RequestId(i as u64),
                    r.nodes.min(total_nodes),
                    Duration::from_secs(r.estimate_s as f64),
                    now,
                );
                sched.submit(now, req, &mut starts);
            }
            Ev::Cancel(i) => {
                let did = sched.cancel(now, RequestId(i as u64), &mut starts);
                if did {
                    cancelled[i] = true;
                    assert!(!started[i], "cancelled a started request");
                }
            }
            Ev::Complete(i) => {
                busy -= reqs[i].nodes.min(total_nodes) as i64;
                finished[i] = true;
                sched.complete(now, RequestId(i as u64), &mut starts);
            }
        }
        for id in starts.drain(..) {
            let i = id.0 as usize;
            assert!(!started[i], "request {i} started twice");
            assert!(!cancelled[i], "request {i} started after cancellation");
            started[i] = true;
            busy += reqs[i].nodes.min(total_nodes) as i64;
            assert!(
                busy <= total_nodes as i64,
                "{alg:?}: capacity exceeded: {busy}/{total_nodes}"
            );
            // Runs some fraction of its request (early completion).
            let actual = Duration::from_secs(
                (reqs[i].estimate_s as f64 * reqs[i].run_fraction).max(0.000_001),
            );
            engine.push(now + actual, Ev::Complete(i));
        }
        // Scheduler-reported free nodes must agree with our accounting.
        assert_eq!(
            sched.free_nodes() as i64,
            total_nodes as i64 - busy,
            "{alg:?}: free-node accounting diverged"
        );
    }

    // Liveness: every request either started (and finished) or was
    // cancelled — nothing stuck in the queue at drain.
    for (i, r) in reqs.iter().enumerate() {
        let _ = r;
        assert!(
            started[i] || cancelled[i],
            "{alg:?}: request {i} neither started nor cancelled"
        );
        if started[i] {
            assert!(
                finished[i],
                "{alg:?}: request {i} started but never finished"
            );
        }
    }
    assert_eq!(sched.queue_len(), 0);
    assert_eq!(sched.running_len(), 0);
    (
        started.iter().filter(|&&s| s).count(),
        cancelled.iter().filter(|&&c| c).count(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fcfs_respects_all_invariants(reqs in gen_reqs(60)) {
        drive(Algorithm::Fcfs, 32, &reqs);
    }

    #[test]
    fn easy_respects_all_invariants(reqs in gen_reqs(60)) {
        drive(Algorithm::Easy, 32, &reqs);
    }

    #[test]
    fn cbf_respects_all_invariants(reqs in gen_reqs(60)) {
        drive(Algorithm::Cbf, 32, &reqs);
    }

    /// All three algorithms start + cancel the same multiset of requests
    /// (they may do so at different times, but none may lose any).
    #[test]
    fn algorithms_agree_on_survivors(reqs in gen_reqs(40)) {
        let fcfs = drive(Algorithm::Fcfs, 32, &reqs);
        let easy = drive(Algorithm::Easy, 32, &reqs);
        let cbf = drive(Algorithm::Cbf, 32, &reqs);
        prop_assert_eq!(fcfs.0 + fcfs.1, reqs.len());
        prop_assert_eq!(easy.0 + easy.1, reqs.len());
        prop_assert_eq!(cbf.0 + cbf.1, reqs.len());
    }
}
