//! Request identifiers and the request record schedulers plan with.

use rbr_simcore::{Duration, SimTime};

/// Globally unique identifier of one request (one copy of a job at one
/// cluster — a job using `r` redundant requests owns `r` distinct ids).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// What a batch scheduler knows about a request: node count, *requested*
/// compute time, and submission instant. The actual runtime is invisible
/// to the scheduler — it only learns it when the completion event fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Request {
    /// Unique id of this request.
    pub id: RequestId,
    /// Number of nodes requested.
    pub nodes: u32,
    /// Requested compute time (the user's estimate).
    pub estimate: Duration,
    /// Submission instant.
    pub submit: SimTime,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or the estimate is zero.
    pub fn new(id: RequestId, nodes: u32, estimate: Duration, submit: SimTime) -> Self {
        assert!(nodes > 0, "a request must ask for at least one node");
        assert!(
            !estimate.is_zero(),
            "a request must ask for a positive compute time"
        );
        Request {
            id,
            nodes,
            estimate,
            submit,
        }
    }

    /// The end of the request's allocation if it started at `start`.
    pub fn end_if_started(&self, start: SimTime) -> SimTime {
        start + self.estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_if_started() {
        let r = Request::new(RequestId(1), 4, Duration::from_secs(100.0), SimTime::ZERO);
        assert_eq!(
            r.end_if_started(SimTime::from_secs(50.0)),
            SimTime::from_secs(150.0)
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Request::new(RequestId(1), 0, Duration::from_secs(1.0), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive compute time")]
    fn zero_estimate_rejected() {
        let _ = Request::new(RequestId(1), 1, Duration::ZERO, SimTime::ZERO);
    }
}
