//! EASY aggressive backfilling (Lifka, JSSPP 1995).
//!
//! The head of the queue holds the only reservation: its start is bounded
//! by the *shadow time* computed from the requested ends of running jobs.
//! Any other queued job may jump ahead ("backfill") if it fits in the
//! currently free nodes and either (a) finishes by the shadow time, or
//! (b) only uses nodes that will still be spare at the shadow time.
//!
//! Backfilling opportunities appear whenever a request is submitted,
//! canceled, or a job finishes early — the three churn sources redundant
//! requests amplify, which is exactly why the paper studies them.

use std::collections::VecDeque;

use rbr_simcore::SimTime;

use crate::core::ClusterCore;
use crate::observe::{ObserverSlot, StartKind};
use crate::scheduler::{fifo_predicted_start, Scheduler};
use crate::types::{Request, RequestId};

/// EASY backfilling scheduler.
#[derive(Clone, Debug)]
pub struct EasyScheduler {
    core: ClusterCore,
    queue: VecDeque<Request>,
    backfills: u64,
    observer: ObserverSlot,
}

impl EasyScheduler {
    /// An idle EASY cluster of `nodes` nodes.
    pub fn new(nodes: u32) -> Self {
        EasyScheduler {
            core: ClusterCore::new(nodes),
            queue: VecDeque::new(),
            backfills: 0,
            observer: ObserverSlot::empty(),
        }
    }

    /// One scheduling pass: start from the head while it fits, then a
    /// single backfilling sweep protected by the head's shadow.
    fn try_schedule(&mut self, now: SimTime, starts: &mut Vec<RequestId>) {
        // Phase 1: strict FIFO starts.
        while let Some(head) = self.queue.front() {
            if !self.core.fits_now(head) {
                break;
            }
            let req = self.queue.pop_front().expect("front checked above");
            self.core.start(now, req);
            self.observer
                .with(|s, o| o.on_start(s, now, &req, StartKind::FifoHead));
            starts.push(req.id);
        }
        if self.queue.is_empty() || self.core.free() == 0 {
            return;
        }

        // Phase 2: backfill behind the (blocked) head.
        let head = *self.queue.front().expect("queue checked non-empty");
        let (shadow, mut extra) = self.core.shadow(&head);
        self.observer
            .with(|s, o| o.on_shadow(s, now, &head, shadow, extra));
        let mut i = 1;
        while i < self.queue.len() {
            if self.core.free() == 0 {
                return;
            }
            let cand = self.queue[i];
            if cand.nodes <= self.core.free() {
                let ends_by_shadow = cand.end_if_started(now) <= shadow;
                if ends_by_shadow || cand.nodes <= extra {
                    if !ends_by_shadow {
                        // The job outlives the shadow: it must fit in the
                        // nodes the head will not need.
                        extra -= cand.nodes;
                    }
                    self.queue.remove(i).expect("index in bounds");
                    self.core.start(now, cand);
                    self.backfills += 1;
                    self.observer
                        .with(|s, o| o.on_start(s, now, &cand, StartKind::Backfill));
                    starts.push(cand.id);
                    continue; // i now points at the next candidate
                }
            }
            i += 1;
        }
    }

    fn remove_queued(&mut self, id: RequestId) -> bool {
        if let Some(pos) = self.queue.iter().position(|r| r.id == id) {
            self.queue.remove(pos);
            true
        } else {
            false
        }
    }
}

impl Scheduler for EasyScheduler {
    fn name(&self) -> &'static str {
        "EASY"
    }

    fn total_nodes(&self) -> u32 {
        self.core.total()
    }

    fn free_nodes(&self) -> u32 {
        self.core.free()
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn running_len(&self) -> usize {
        self.core.running_len()
    }

    fn submit(&mut self, now: SimTime, req: Request, starts: &mut Vec<RequestId>) {
        assert!(
            req.nodes <= self.core.total(),
            "request {} cannot ever run: {} nodes > machine size {}",
            req.id,
            req.nodes,
            self.core.total()
        );
        self.observer.with(|s, o| o.on_submit(s, now, 0, &req));
        self.queue.push_back(req);
        self.try_schedule(now, starts);
    }

    fn cancel(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) -> bool {
        let removed = self.remove_queued(id);
        if removed {
            self.observer.with(|s, o| o.on_cancel(s, now, id));
            self.try_schedule(now, starts);
        }
        removed
    }

    fn complete(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) {
        let rec = self.core.remove(id);
        self.observer
            .with(|s, o| o.on_finish(s, now, id, rec.request.nodes));
        self.try_schedule(now, starts);
    }

    fn abort(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) {
        let rec = self.core.remove(id);
        self.observer
            .with(|s, o| o.on_finish(s, now, id, rec.request.nodes));
        self.try_schedule(now, starts);
    }

    fn predicted_start(&self, now: SimTime, id: RequestId) -> Option<SimTime> {
        if self.core.is_running(id) {
            return Some(now);
        }
        fifo_predicted_start(&self.core, self.queue.iter(), now, id)
    }

    fn backfills(&self) -> u64 {
        self.backfills
    }

    fn is_queued(&self, id: RequestId) -> bool {
        self.queue.iter().any(|r| r.id == id)
    }

    fn is_running(&self, id: RequestId) -> bool {
        self.core.is_running(id)
    }

    fn attach_observer(&mut self, slot: ObserverSlot) {
        slot.with(|s, o| o.on_attach(s, self.core.total(), self.name()));
        self.observer = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::Duration;

    fn req(id: u64, nodes: u32, est: f64) -> Request {
        Request::new(
            RequestId(id),
            nodes,
            Duration::from_secs(est),
            SimTime::ZERO,
        )
    }
    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// The canonical EASY scenario: a short narrow job jumps a blocked
    /// wide head because it finishes before the shadow time.
    #[test]
    fn backfills_short_job_that_ends_by_shadow() {
        let mut s = EasyScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 8, 100.0), &mut starts); // runs, ends 100
        s.submit(t(0.0), req(2, 8, 50.0), &mut starts); // blocked head, shadow 100
        s.submit(t(0.0), req(3, 2, 100.0), &mut starts); // 2 ≤ extra (2): backfills
        assert_eq!(starts, vec![RequestId(1), RequestId(3)]);
        assert_eq!(s.free_nodes(), 0);
    }

    #[test]
    fn does_not_backfill_job_that_would_delay_head() {
        let mut s = EasyScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 8, 100.0), &mut starts); // ends 100
        s.submit(t(0.0), req(2, 4, 50.0), &mut starts); // head: shadow 100, extra 6
                                                        // Candidate: fits now (2 free)? No — only 2 free, needs 2. Ends at
                                                        // 200 > shadow, but nodes 2 ≤ extra 6 → may backfill.
        s.submit(t(0.0), req(3, 2, 200.0), &mut starts);
        assert_eq!(starts, vec![RequestId(1), RequestId(3)]);

        // Now 0 free; a 1-node job cannot start whatever its length.
        starts.clear();
        s.submit(t(0.0), req(4, 1, 1.0), &mut starts);
        assert!(starts.is_empty());
    }

    #[test]
    fn extra_nodes_budget_is_consumed() {
        let mut s = EasyScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 6, 100.0), &mut starts); // ends 100, 4 free
        s.submit(t(0.0), req(2, 8, 100.0), &mut starts); // head blocked; shadow 100, extra 2
                                                         // Long candidate using 2 ≤ extra: allowed, consumes the budget.
        s.submit(t(0.0), req(3, 2, 500.0), &mut starts);
        // Second long candidate needing 2 > remaining extra 0: refused
        // even though 2 nodes are free.
        s.submit(t(0.0), req(4, 2, 500.0), &mut starts);
        assert_eq!(starts, vec![RequestId(1), RequestId(3)]);
        assert_eq!(s.free_nodes(), 2);
        // But a short job ending by the shadow still backfills.
        s.submit(t(0.0), req(5, 2, 50.0), &mut starts);
        assert_eq!(starts.last(), Some(&RequestId(5)));
    }

    #[test]
    fn early_completion_triggers_backfill() {
        let mut s = EasyScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 10, 1000.0), &mut starts); // hogs machine
        s.submit(t(0.0), req(2, 10, 1000.0), &mut starts); // waits
        s.submit(t(0.0), req(3, 1, 10.0), &mut starts); // waits
        assert_eq!(starts, vec![RequestId(1)]);
        starts.clear();
        // Job 1 finishes way before its request: everything reshuffles.
        s.complete(t(100.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2)]);
        // Queue still holds job 3 (no free nodes).
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn cancellation_triggers_backfill() {
        let mut s = EasyScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 8, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 8, 100.0), &mut starts); // head, blocked
        s.submit(t(0.0), req(3, 4, 500.0), &mut starts); // too big to backfill (extra 2)
        assert_eq!(starts, vec![RequestId(1)]);
        starts.clear();
        // Cancel the head: job 3 becomes head; 2 free < 4 → still waits...
        assert!(s.cancel(t(1.0), RequestId(2), &mut starts));
        assert!(starts.is_empty());
        // ...but when job 1 completes it starts.
        s.complete(t(60.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(3)]);
    }

    #[test]
    fn fifo_among_equal_jobs() {
        let mut s = EasyScheduler::new(4);
        let mut starts = Vec::new();
        for i in 1..=5 {
            s.submit(t(0.0), req(i, 4, 10.0), &mut starts);
        }
        assert_eq!(starts, vec![RequestId(1)]);
        for k in 2..=5u64 {
            starts.clear();
            s.complete(t(10.0 * (k - 1) as f64), RequestId(k - 1), &mut starts);
            assert_eq!(starts, vec![RequestId(k)]);
        }
    }

    #[test]
    fn backfill_preserves_head_reservation_end_to_end() {
        // Head must never start later than its shadow at decision time.
        let mut s = EasyScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 10, 100.0), &mut starts); // ends ≤ 100
        s.submit(t(0.0), req(2, 10, 100.0), &mut starts); // head, shadow = 100
        s.submit(t(0.0), req(3, 5, 100.0), &mut starts); // cannot fit now
        assert_eq!(starts, vec![RequestId(1)]);
        starts.clear();
        // Job 1 runs its full request; at t=100 the head starts — job 3
        // must not have sneaked ahead.
        s.complete(t(100.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2)]);
    }

    #[test]
    fn abort_reschedules_immediately() {
        let mut s = EasyScheduler::new(8);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 8, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 8, 100.0), &mut starts);
        starts.clear();
        s.abort(t(0.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2)]);
    }

    #[test]
    fn predicted_start_accounts_for_queue() {
        let mut s = EasyScheduler::new(4);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 4, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 2, 30.0), &mut starts);
        assert_eq!(s.predicted_start(t(0.0), RequestId(2)), Some(t(100.0)));
    }
}
