//! Conservative Backfilling (Mu'alem & Feitelson, IEEE TPDS 2001).
//!
//! Every request receives a *reservation* — the earliest slot in the
//! availability profile that fits its node count for its full requested
//! time — the moment it is submitted. A job may therefore backfill only
//! if doing so delays no previously submitted job. When capacity frees up
//! early (early completion, cancellation, aborted start) the schedule is
//! *compressed*: the profile is rebuilt from the running set and every
//! queued request is re-reserved in submission order, which can only pull
//! work earlier in aggregate.
//!
//! Full compression costs `O(queue² )`, so like production schedulers
//! (Maui's `RMPOLLINTERVAL`) this implementation batches it into
//! **scheduling cycles**: between cycles, reservations that come due still
//! start exactly on time (always safe — capacity only ever exceeds the
//! plan), and compression runs when the configured interval has elapsed,
//! or immediately whenever the machine would otherwise sit idle. A cycle
//! of `Duration::ZERO` (the [`CbfScheduler::new`] default) gives textbook
//! compress-on-every-event semantics.
//!
//! The reservations double as the queue-waiting-time predictor evaluated
//! in Section 5 of the paper: `predicted_start − submit` is exactly the
//! forecast a CBF scheduler can hand a user at submission time.

use rbr_simcore::{Duration, SimTime};

use crate::core::ClusterCore;
use crate::observe::{ObserverSlot, StartKind};
use crate::profile::Profile;
use crate::scheduler::Scheduler;
use crate::types::{Request, RequestId};

/// Conservative Backfilling scheduler.
#[derive(Clone, Debug)]
pub struct CbfScheduler {
    core: ClusterCore,
    backfills: u64,
    /// Queued requests in submission order with their reserved starts.
    queue: Vec<(Request, SimTime)>,
    /// Future availability including every queued reservation, as of the
    /// last compression (stale but always conservative in between).
    profile: Profile,
    /// Scheduling-cycle length; ZERO compresses on every relevant event.
    cycle: Duration,
    last_compress: SimTime,
    /// True when capacity was freed earlier than the profile assumed.
    dirty: bool,
    observer: ObserverSlot,
}

impl CbfScheduler {
    /// An idle CBF cluster of `nodes` nodes with textbook semantics
    /// (compression on every capacity-freeing event).
    pub fn new(nodes: u32) -> Self {
        Self::with_cycle(nodes, Duration::ZERO)
    }

    /// An idle CBF cluster whose schedule compression is batched into
    /// cycles of the given length (the production-scheduler behaviour;
    /// the grid experiments use 30 s).
    pub fn with_cycle(nodes: u32, cycle: Duration) -> Self {
        let core = ClusterCore::new(nodes);
        let profile = core.profile(SimTime::ZERO);
        CbfScheduler {
            core,
            backfills: 0,
            queue: Vec::new(),
            profile,
            cycle,
            last_compress: SimTime::ZERO,
            dirty: false,
            observer: ObserverSlot::empty(),
        }
    }

    /// The configured scheduling-cycle length.
    pub fn cycle(&self) -> Duration {
        self.cycle
    }

    /// Starts every queued request whose reservation is due, in
    /// submission order. Always safe on a stale profile: actual capacity
    /// can only exceed the planned capacity the reservations were placed
    /// against.
    fn start_due(&mut self, now: SimTime, starts: &mut Vec<RequestId>) {
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].1 <= now {
                let (req, _) = self.queue.remove(i);
                // Jumping ahead of any still-queued earlier submission is
                // a backfill in CBF's sense.
                if self.queue[..i].iter().any(|(r, _)| r.submit <= req.submit) {
                    self.backfills += 1;
                }
                self.core.start(now, req);
                self.observer
                    .with(|s, o| o.on_start(s, now, &req, StartKind::Reservation));
                starts.push(req.id);
            } else {
                i += 1;
            }
        }
    }

    /// Schedule compression: rebuild the profile from the running set and
    /// re-reserve every queued request in submission order, starting those
    /// whose reservation lands at `now`.
    ///
    /// Re-reserving in submission order is the textbook compression rule:
    /// freed capacity propagates to the oldest requests first, and no
    /// request is handed a later slot than a newer request could claim
    /// ahead of it.
    fn compress(&mut self, now: SimTime, starts: &mut Vec<RequestId>) {
        let mut profile = self.core.profile(now);
        let queued = std::mem::take(&mut self.queue);
        let mut skipped_earlier = false;
        for (req, _old) in queued {
            let start = profile.earliest_fit(now, req.estimate, req.nodes);
            profile.reserve(start, req.estimate, req.nodes);
            self.observer
                .with(|s, o| o.on_reserve(s, now, req.id, start));
            if start == now {
                if skipped_earlier {
                    self.backfills += 1;
                }
                self.core.start(now, req);
                self.observer
                    .with(|s, o| o.on_start(s, now, &req, StartKind::Reservation));
                starts.push(req.id);
            } else {
                skipped_earlier = true;
                self.queue.push((req, start));
            }
        }
        self.profile = profile;
        self.last_compress = now;
        self.dirty = false;
    }

    /// Runs a scheduling pass: compress if the schedule is stale and the
    /// cycle has elapsed (or the machine risks idling), otherwise just
    /// start due reservations.
    fn pass(&mut self, now: SimTime, starts: &mut Vec<RequestId>) {
        // A reservation that is strictly overdue (its anchor — typically
        // the *requested* end of a job that finished early — passed with
        // no event at that instant) must not start late against the stale
        // profile: it would occupy nodes beyond its profiled window and a
        // later reservation could be placed on top of its tail. Rebuild
        // instead; compression re-anchors everything at `now`.
        let overdue = self.queue.iter().any(|&(_, start)| start < now);
        let must_compress = overdue
            || (self.dirty
                && (now.since(self.last_compress) >= self.cycle
                    // An idle machine with a queue must never wait for the
                    // next cycle: there may be no further event to drive it.
                    || self.core.running_len() == 0));
        if must_compress {
            self.compress(now, starts);
        } else {
            self.start_due(now, starts);
        }
    }
}

impl Scheduler for CbfScheduler {
    fn name(&self) -> &'static str {
        "CBF"
    }

    fn total_nodes(&self) -> u32 {
        self.core.total()
    }

    fn free_nodes(&self) -> u32 {
        self.core.free()
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn running_len(&self) -> usize {
        self.core.running_len()
    }

    fn submit(&mut self, now: SimTime, req: Request, starts: &mut Vec<RequestId>) {
        assert!(
            req.nodes <= self.core.total(),
            "request {} cannot ever run: {} nodes > machine size {}",
            req.id,
            req.nodes,
            self.core.total()
        );
        // Refresh the plan first if it is stale and due — the new request
        // then reserves against the freshest view.
        self.pass(now, starts);
        self.observer.with(|s, o| o.on_submit(s, now, 0, &req));
        let start = self.profile.earliest_fit(now, req.estimate, req.nodes);
        self.profile.reserve(start, req.estimate, req.nodes);
        self.observer
            .with(|s, o| o.on_reserve(s, now, req.id, start));
        if start == now {
            self.core.start(now, req);
            self.observer
                .with(|s, o| o.on_start(s, now, &req, StartKind::Reservation));
            starts.push(req.id);
        } else {
            self.queue.push((req, start));
        }
    }

    fn cancel(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) -> bool {
        if let Some(pos) = self.queue.iter().position(|(r, _)| r.id == id) {
            self.queue.remove(pos);
            self.observer.with(|s, o| o.on_cancel(s, now, id));
            // The phantom reservation stays in the stale profile until the
            // next compression — conservative in the meantime.
            self.dirty = true;
            self.pass(now, starts);
            true
        } else {
            false
        }
    }

    fn complete(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) {
        let rec = self.core.remove(id);
        self.observer
            .with(|s, o| o.on_finish(s, now, id, rec.request.nodes));
        if rec.requested_end > now {
            // Early completion: capacity freed ahead of plan.
            self.dirty = true;
        }
        self.pass(now, starts);
    }

    fn abort(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) {
        let rec = self.core.remove(id);
        self.observer
            .with(|s, o| o.on_finish(s, now, id, rec.request.nodes));
        // The aborted allocation occupied `[now, now + estimate)` in the
        // plan; that window is now free.
        self.dirty = true;
        self.pass(now, starts);
    }

    fn predicted_start(&self, now: SimTime, id: RequestId) -> Option<SimTime> {
        if self.core.is_running(id) {
            return Some(now);
        }
        self.queue
            .iter()
            .find(|(r, _)| r.id == id)
            .map(|&(_, start)| start)
    }

    fn backfills(&self) -> u64 {
        self.backfills
    }

    fn is_queued(&self, id: RequestId) -> bool {
        self.queue.iter().any(|(r, _)| r.id == id)
    }

    fn is_running(&self, id: RequestId) -> bool {
        self.core.is_running(id)
    }

    fn attach_observer(&mut self, slot: ObserverSlot) {
        slot.with(|s, o| o.on_attach(s, self.core.total(), self.name()));
        self.observer = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use rbr_simcore::Duration;

    fn req(id: u64, nodes: u32, est: f64) -> Request {
        Request::new(
            RequestId(id),
            nodes,
            Duration::from_secs(est),
            SimTime::ZERO,
        )
    }
    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn every_request_gets_a_reservation_at_submit() {
        let mut s = CbfScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 10, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 10, 50.0), &mut starts);
        s.submit(t(0.0), req(3, 10, 50.0), &mut starts);
        assert_eq!(starts, vec![RequestId(1)]);
        assert_eq!(s.predicted_start(t(0.0), RequestId(2)), Some(t(100.0)));
        assert_eq!(s.predicted_start(t(0.0), RequestId(3)), Some(t(150.0)));
    }

    #[test]
    fn backfills_into_holes_without_delaying_reservations() {
        let mut s = CbfScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 8, 100.0), &mut starts); // runs until 100
        s.submit(t(0.0), req(2, 8, 100.0), &mut starts); // reserved [100, 200)
                                                         // Short narrow job: 2 nodes free now, ends before 100 → starts
                                                         // immediately (backfills).
        s.submit(t(0.0), req(3, 2, 50.0), &mut starts);
        assert_eq!(starts, vec![RequestId(1), RequestId(3)]);
        assert_eq!(
            s.backfills(),
            0,
            "submit-time starts are not jumps over the queue"
        );
        // Long narrow job: 2 nodes free now but would collide with the
        // reservation of request 2 at t=100 → must wait until 200.
        s.submit(t(0.0), req(4, 4, 150.0), &mut starts);
        assert_eq!(s.predicted_start(t(0.0), RequestId(4)), Some(t(200.0)));
    }

    /// The conservative guarantee EASY does not give: a stream of short
    /// backfill candidates can never push an existing reservation later.
    #[test]
    fn reservations_are_stable_under_later_submissions() {
        let mut s = CbfScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 10, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 10, 100.0), &mut starts); // reserved [100, 200)
        let before = s.predicted_start(t(0.0), RequestId(2)).unwrap();
        for i in 0..20 {
            s.submit(t(0.0), req(100 + i, 1, 1000.0), &mut starts);
        }
        assert_eq!(s.predicted_start(t(0.0), RequestId(2)), Some(before));
    }

    #[test]
    fn early_completion_compresses_schedule() {
        let mut s = CbfScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 10, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 10, 50.0), &mut starts); // reserved at 100
        starts.clear();
        // Request 1 finishes at 30 instead of 100: request 2 starts now.
        s.complete(t(30.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2)]);
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn cancellation_compresses_schedule() {
        let mut s = CbfScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 10, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 10, 100.0), &mut starts); // reserved 100
        s.submit(t(0.0), req(3, 10, 100.0), &mut starts); // reserved 200
        assert_eq!(s.predicted_start(t(0.0), RequestId(3)), Some(t(200.0)));
        starts.clear();
        assert!(s.cancel(t(10.0), RequestId(2), &mut starts));
        // Request 3 inherits the earlier slot.
        assert_eq!(s.predicted_start(t(10.0), RequestId(3)), Some(t(100.0)));
        assert!(starts.is_empty());
    }

    #[test]
    fn start_at_exact_requested_end() {
        let mut s = CbfScheduler::new(4);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 4, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 4, 10.0), &mut starts);
        starts.clear();
        // Request 1 runs its entire requested time; the completion event
        // at t=100 must start request 2 (no compression involved: the
        // schedule was never stale).
        s.complete(t(100.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2)]);
    }

    #[test]
    fn abort_compresses_and_restarts() {
        let mut s = CbfScheduler::new(4);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 4, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 4, 100.0), &mut starts);
        assert_eq!(starts, vec![RequestId(1)]);
        starts.clear();
        s.abort(t(0.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2)]);
        assert!(s.is_running(RequestId(2)));
    }

    #[test]
    fn cancel_running_or_unknown_is_refused() {
        let mut s = CbfScheduler::new(4);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 4, 100.0), &mut starts);
        assert!(!s.cancel(t(1.0), RequestId(1), &mut starts)); // running
        assert!(!s.cancel(t(1.0), RequestId(9), &mut starts)); // unknown
    }

    #[test]
    fn predictions_are_conservative_with_overestimates() {
        // Requested 100 s, actually runs 20 s: the prediction for the next
        // job is 100 (based on the request), the reality is 20 — the
        // Section 5 over-prediction in miniature.
        let mut s = CbfScheduler::new(4);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 4, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 4, 100.0), &mut starts);
        let predicted = s.predicted_start(t(0.0), RequestId(2)).unwrap();
        assert_eq!(predicted, t(100.0));
        starts.clear();
        s.complete(t(20.0), RequestId(1), &mut starts); // early completion
        assert_eq!(starts, vec![RequestId(2)]); // actual start: t=20
    }

    #[test]
    fn mixed_widths_fill_the_machine() {
        let mut s = CbfScheduler::new(8);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 5, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 3, 100.0), &mut starts);
        s.submit(t(0.0), req(3, 3, 100.0), &mut starts); // reserved at 100
        assert_eq!(starts, vec![RequestId(1), RequestId(2)]);
        assert_eq!(s.free_nodes(), 0);
        assert_eq!(s.predicted_start(t(0.0), RequestId(3)), Some(t(100.0)));
    }

    // ------------------------------------------------------------------
    // Scheduling-cycle behaviour.
    // ------------------------------------------------------------------

    #[test]
    fn cycle_defers_compression_but_not_due_starts() {
        let mut s = CbfScheduler::with_cycle(10, Duration::from_secs(30.0));
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 10, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 6, 50.0), &mut starts); // reserved at 100
        s.submit(t(0.0), req(3, 4, 50.0), &mut starts); // reserved at 100
        starts.clear();
        // Request 1 completes early at t=10 — within the cycle, so no
        // compression yet... but the machine went idle, which forces one.
        s.complete(t(10.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2), RequestId(3)]);
    }

    #[test]
    fn cycle_batches_compression_while_machine_busy() {
        let mut s = CbfScheduler::with_cycle(10, Duration::from_secs(30.0));
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 6, 100.0), &mut starts); // runs
        s.submit(t(0.0), req(2, 6, 100.0), &mut starts); // reserved at 100
        s.submit(t(0.0), req(3, 4, 40.0), &mut starts); // backfills now
        assert_eq!(starts, vec![RequestId(1), RequestId(3)]);
        starts.clear();
        // Request 3 completes early at t=5; machine still busy and cycle
        // not elapsed → no compression, request 2 keeps its reservation.
        s.complete(t(5.0), RequestId(3), &mut starts);
        assert!(starts.is_empty());
        assert_eq!(s.predicted_start(t(5.0), RequestId(2)), Some(t(100.0)));
        // A submit after the cycle elapses triggers the deferred
        // compression; request 2 still cannot start (needs 6 nodes, only
        // 4 free), but its reservation stays at 100 while the newcomer
        // reserves around it.
        s.submit(t(40.0), req(4, 4, 30.0), &mut starts);
        assert_eq!(starts, vec![RequestId(4)]);
    }

    #[test]
    fn zero_cycle_is_textbook_immediate_compression() {
        let mut s = CbfScheduler::new(10);
        assert_eq!(s.cycle(), Duration::ZERO);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 10, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 4, 100.0), &mut starts);
        s.submit(t(0.0), req(3, 4, 100.0), &mut starts);
        starts.clear();
        // Early completion at t=1 immediately compresses even though the
        // machine is still conceptually busy with nothing — all nodes
        // free, so both queued jobs start.
        s.complete(t(1.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2), RequestId(3)]);
    }

    /// Regression: a reservation anchored on a phantom requested-end (its
    /// anchoring job completed early, inside the cycle) must not start
    /// *late* against the stale profile — its tail would extend past the
    /// profiled window and a later submission could be granted the same
    /// nodes.
    #[test]
    fn overdue_reservation_forces_compression() {
        let mut s = CbfScheduler::with_cycle(10, Duration::from_hours(1));
        let mut starts = Vec::new();
        s.submit(t(0.0), req(10, 2, 500.0), &mut starts); // D: runs to 500
        s.submit(t(0.0), req(11, 8, 100.0), &mut starts); // A: requested 100
        s.submit(t(0.0), req(12, 8, 10.0), &mut starts); // B: reserved at 100
        assert_eq!(starts, vec![RequestId(10), RequestId(11)]);
        starts.clear();
        // A finishes early; machine still busy (D), cycle not elapsed →
        // no compression, B keeps its (now phantom-anchored) reservation.
        s.complete(t(20.0), RequestId(11), &mut starts);
        assert!(starts.is_empty());
        // D completes at 500; B is overdue (anchor 100 < 500) → the pass
        // must compress and start B now, with a consistent profile.
        s.complete(t(500.0), RequestId(10), &mut starts);
        assert_eq!(starts, vec![RequestId(12)]);
        // A newcomer needing the whole machine reserves AFTER B's actual
        // occupancy [500, 510), not after its stale window [100, 110).
        starts.clear();
        s.submit(t(500.0), req(13, 10, 50.0), &mut starts);
        assert!(starts.is_empty(), "must not overlap B's tail");
        assert_eq!(s.predicted_start(t(500.0), RequestId(13)), Some(t(510.0)));
    }

    #[test]
    fn due_start_exactly_at_phantom_anchor() {
        // With a long cycle, a reservation anchored on a cancelled job's
        // phantom end still starts at its reserved time.
        let mut s = CbfScheduler::with_cycle(10, Duration::from_hours(1));
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 10, 100.0), &mut starts); // runs to 100
        s.submit(t(0.0), req(2, 10, 50.0), &mut starts); // reserved at 100
        starts.clear();
        // On-time completion (not early): schedule is not stale.
        s.complete(t(100.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2)]);
    }
}
