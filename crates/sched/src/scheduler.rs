//! The scheduler interface shared by FCFS, EASY, and CBF.

use rbr_simcore::{Duration, SimTime};

use crate::cbf::CbfScheduler;
use crate::core::ClusterCore;
use crate::easy::EasyScheduler;
use crate::fcfs::FcfsScheduler;
use crate::observe::ObserverSlot;
use crate::profile::Profile;
use crate::types::{Request, RequestId};

/// A batch job scheduling algorithm driving one cluster.
///
/// Schedulers are passive: the simulation engine calls them at event
/// instants, and every call that can change resource allocation appends
/// the ids of requests that start executing *now* to `starts` (in start
/// order). The engine owns actual runtimes and schedules completion
/// events; schedulers only ever see requested times.
pub trait Scheduler {
    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// Machine size in nodes.
    fn total_nodes(&self) -> u32;

    /// Currently idle nodes.
    fn free_nodes(&self) -> u32;

    /// Number of queued (not yet started) requests.
    fn queue_len(&self) -> usize;

    /// Number of running requests.
    fn running_len(&self) -> usize;

    /// Submits a request at instant `now`.
    fn submit(&mut self, now: SimTime, req: Request, starts: &mut Vec<RequestId>);

    /// Cancels a *queued* request. Returns `true` if the request was
    /// queued and has been removed; `false` if it is unknown, already
    /// running, or already finished (the redundant-request protocol makes
    /// such races normal, so this is not an error).
    fn cancel(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) -> bool;

    /// Reports that a running request finished (possibly earlier than its
    /// requested end — the backfilling trigger the paper highlights).
    fn complete(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>);

    /// Revokes a start the engine refused to commit: the request was
    /// granted nodes at this exact instant but its job already began
    /// elsewhere, so the allocation is torn down immediately (the
    /// zero-latency cancellation callback).
    fn abort(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>);

    /// The scheduler's own forecast of when a request will start, based on
    /// the current queue state and requested compute times (Section 5's
    /// predictor). For a running request this is its actual start; for a
    /// queued request it is a conservative simulation of the queue; `None`
    /// for unknown requests.
    fn predicted_start(&self, now: SimTime, id: RequestId) -> Option<SimTime>;

    /// Number of out-of-order starts so far: requests that began while an
    /// earlier-submitted request was still waiting (EASY/CBF backfills;
    /// always 0 for FCFS). Quantifies the backfilling activity that the
    /// paper's §3.3 explanation of the small-N penalty appeals to.
    fn backfills(&self) -> u64 {
        0
    }

    /// Whether the request is queued.
    fn is_queued(&self, id: RequestId) -> bool;

    /// Whether the request is running.
    fn is_running(&self, id: RequestId) -> bool;

    /// Attaches an observer slot delivering this scheduler's hook events
    /// (see [`crate::observe`]). The default implementation discards the
    /// slot: a scheduler without hook points simply cannot be audited.
    fn attach_observer(&mut self, _slot: ObserverSlot) {}
}

/// The three algorithms evaluated in the paper (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// First-Come-First-Serve, no backfilling.
    Fcfs,
    /// EASY aggressive backfilling.
    Easy,
    /// Conservative Backfilling.
    Cbf,
}

impl Algorithm {
    /// Instantiates the algorithm on a machine of `nodes` nodes.
    pub fn build(self, nodes: u32) -> Box<dyn Scheduler> {
        self.build_with_cycle(nodes, Duration::ZERO)
    }

    /// Instantiates the algorithm with a CBF scheduling-cycle length
    /// (ignored by FCFS and EASY, whose passes are cheap).
    pub fn build_with_cycle(self, nodes: u32, cbf_cycle: Duration) -> Box<dyn Scheduler> {
        match self {
            Algorithm::Fcfs => Box::new(FcfsScheduler::new(nodes)),
            Algorithm::Easy => Box::new(EasyScheduler::new(nodes)),
            Algorithm::Cbf => Box::new(CbfScheduler::with_cycle(nodes, cbf_cycle)),
        }
    }

    /// All algorithms, in the order Table 1 lists them.
    pub fn all() -> [Algorithm; 3] {
        [Algorithm::Easy, Algorithm::Cbf, Algorithm::Fcfs]
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Algorithm::Fcfs => "FCFS",
            Algorithm::Easy => "EASY",
            Algorithm::Cbf => "CBF",
        };
        f.write_str(s)
    }
}

/// Conservative FIFO queue-wait prediction: walks the queue in submission
/// order, reserving each request at its earliest fit in the profile, and
/// returns the reserved start of `id`.
///
/// This is the prediction a scheduler "based on the current state of the
/// queue" can offer for algorithms that do not keep reservations of their
/// own (FCFS, EASY).
pub(crate) fn fifo_predicted_start<'a>(
    core: &ClusterCore,
    queue: impl Iterator<Item = &'a Request>,
    now: SimTime,
    id: RequestId,
) -> Option<SimTime> {
    let mut profile: Profile = core.profile(now);
    for req in queue {
        let start = profile.earliest_fit(now, req.estimate, req.nodes);
        if req.id == id {
            return Some(start);
        }
        profile.reserve(start, req.estimate, req.nodes);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::Duration;

    #[test]
    fn algorithm_display_and_build() {
        assert_eq!(Algorithm::Easy.to_string(), "EASY");
        assert_eq!(Algorithm::Cbf.to_string(), "CBF");
        assert_eq!(Algorithm::Fcfs.to_string(), "FCFS");
        for alg in Algorithm::all() {
            let s = alg.build(64);
            assert_eq!(s.total_nodes(), 64);
            assert_eq!(s.free_nodes(), 64);
            assert_eq!(s.queue_len(), 0);
        }
    }

    #[test]
    fn fifo_prediction_stacks_reservations() {
        let mut core = ClusterCore::new(10);
        core.start(
            SimTime::ZERO,
            Request::new(RequestId(1), 10, Duration::from_secs(100.0), SimTime::ZERO),
        );
        let q1 = Request::new(RequestId(2), 10, Duration::from_secs(50.0), SimTime::ZERO);
        let q2 = Request::new(RequestId(3), 10, Duration::from_secs(50.0), SimTime::ZERO);
        let queue = [q1, q2];
        let p1 = fifo_predicted_start(&core, queue.iter(), SimTime::ZERO, RequestId(2));
        let p2 = fifo_predicted_start(&core, queue.iter(), SimTime::ZERO, RequestId(3));
        assert_eq!(p1, Some(SimTime::from_secs(100.0)));
        assert_eq!(p2, Some(SimTime::from_secs(150.0)));
        assert_eq!(
            fifo_predicted_start(&core, queue.iter(), SimTime::ZERO, RequestId(9)),
            None
        );
    }
}
