//! First-Come-First-Serve: jobs start strictly in submission order.
//!
//! FCFS suffers head-of-line blocking — a wide job at the head leaves
//! nodes idle that later narrow jobs could have used. The paper uses it as
//! the baseline comparator in Table 1.

use std::collections::VecDeque;

use rbr_simcore::SimTime;

use crate::core::ClusterCore;
use crate::observe::{ObserverSlot, StartKind};
use crate::scheduler::{fifo_predicted_start, Scheduler};
use crate::types::{Request, RequestId};

/// FCFS scheduler.
#[derive(Clone, Debug)]
pub struct FcfsScheduler {
    core: ClusterCore,
    queue: VecDeque<Request>,
    observer: ObserverSlot,
}

impl FcfsScheduler {
    /// An idle FCFS cluster of `nodes` nodes.
    pub fn new(nodes: u32) -> Self {
        FcfsScheduler {
            core: ClusterCore::new(nodes),
            queue: VecDeque::new(),
            observer: ObserverSlot::empty(),
        }
    }

    /// Starts jobs from the head of the queue while they fit.
    fn try_schedule(&mut self, now: SimTime, starts: &mut Vec<RequestId>) {
        while let Some(head) = self.queue.front() {
            if !self.core.fits_now(head) {
                return;
            }
            let req = self.queue.pop_front().expect("front checked above");
            self.core.start(now, req);
            self.observer
                .with(|s, o| o.on_start(s, now, &req, StartKind::FifoHead));
            starts.push(req.id);
        }
    }

    fn remove_queued(&mut self, id: RequestId) -> bool {
        if let Some(pos) = self.queue.iter().position(|r| r.id == id) {
            self.queue.remove(pos);
            true
        } else {
            false
        }
    }
}

impl Scheduler for FcfsScheduler {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn total_nodes(&self) -> u32 {
        self.core.total()
    }

    fn free_nodes(&self) -> u32 {
        self.core.free()
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn running_len(&self) -> usize {
        self.core.running_len()
    }

    fn submit(&mut self, now: SimTime, req: Request, starts: &mut Vec<RequestId>) {
        assert!(
            req.nodes <= self.core.total(),
            "request {} cannot ever run: {} nodes > machine size {}",
            req.id,
            req.nodes,
            self.core.total()
        );
        self.observer.with(|s, o| o.on_submit(s, now, 0, &req));
        self.queue.push_back(req);
        self.try_schedule(now, starts);
    }

    fn cancel(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) -> bool {
        let removed = self.remove_queued(id);
        if removed {
            self.observer.with(|s, o| o.on_cancel(s, now, id));
            // Removing the head may unblock successors.
            self.try_schedule(now, starts);
        }
        removed
    }

    fn complete(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) {
        let rec = self.core.remove(id);
        self.observer
            .with(|s, o| o.on_finish(s, now, id, rec.request.nodes));
        self.try_schedule(now, starts);
    }

    fn abort(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) {
        let rec = self.core.remove(id);
        self.observer
            .with(|s, o| o.on_finish(s, now, id, rec.request.nodes));
        self.try_schedule(now, starts);
    }

    fn predicted_start(&self, now: SimTime, id: RequestId) -> Option<SimTime> {
        if self.core.is_running(id) {
            return Some(now);
        }
        fifo_predicted_start(&self.core, self.queue.iter(), now, id)
    }

    fn is_queued(&self, id: RequestId) -> bool {
        self.queue.iter().any(|r| r.id == id)
    }

    fn is_running(&self, id: RequestId) -> bool {
        self.core.is_running(id)
    }

    fn attach_observer(&mut self, slot: ObserverSlot) {
        slot.with(|s, o| o.on_attach(s, self.core.total(), self.name()));
        self.observer = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::Duration;

    fn req(id: u64, nodes: u32, est: f64) -> Request {
        Request::new(
            RequestId(id),
            nodes,
            Duration::from_secs(est),
            SimTime::ZERO,
        )
    }
    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn starts_in_order_when_fitting() {
        let mut s = FcfsScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 4, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 4, 100.0), &mut starts);
        s.submit(t(0.0), req(3, 4, 100.0), &mut starts);
        assert_eq!(starts, vec![RequestId(1), RequestId(2)]);
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.free_nodes(), 2);
    }

    #[test]
    fn head_of_line_blocking() {
        let mut s = FcfsScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 8, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 4, 10.0), &mut starts); // blocked head
        s.submit(t(0.0), req(3, 1, 10.0), &mut starts); // would fit, FCFS refuses
        assert_eq!(starts, vec![RequestId(1)]);
        assert_eq!(s.queue_len(), 2);
        assert_eq!(s.free_nodes(), 2); // 2 idle nodes wasted

        // Head's blocker completes → both start.
        starts.clear();
        s.complete(t(100.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2), RequestId(3)]);
    }

    #[test]
    fn cancel_of_blocked_head_unblocks_queue() {
        let mut s = FcfsScheduler::new(10);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 10, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 10, 100.0), &mut starts);
        s.submit(t(0.0), req(3, 2, 10.0), &mut starts);
        assert_eq!(starts, vec![RequestId(1)]);
        starts.clear();
        assert!(s.cancel(t(1.0), RequestId(2), &mut starts));
        // Request 3 still blocked behind nothing-that-fits? No: after
        // cancel the head is request 3 and 0 nodes free... request 1 holds
        // all 10 nodes, so nothing starts.
        assert!(starts.is_empty());
        starts.clear();
        s.complete(t(50.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(3)]);
    }

    #[test]
    fn cancel_unknown_returns_false() {
        let mut s = FcfsScheduler::new(4);
        let mut starts = Vec::new();
        assert!(!s.cancel(t(0.0), RequestId(77), &mut starts));
    }

    #[test]
    fn abort_frees_nodes_and_reschedules() {
        let mut s = FcfsScheduler::new(4);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 4, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 4, 100.0), &mut starts);
        assert_eq!(starts, vec![RequestId(1)]);
        starts.clear();
        s.abort(t(0.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2)]);
        assert!(s.is_running(RequestId(2)));
        assert!(!s.is_running(RequestId(1)));
    }

    #[test]
    fn prediction_follows_fifo_order() {
        let mut s = FcfsScheduler::new(4);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 4, 100.0), &mut starts);
        s.submit(t(0.0), req(2, 4, 50.0), &mut starts);
        s.submit(t(0.0), req(3, 4, 50.0), &mut starts);
        assert_eq!(s.predicted_start(t(0.0), RequestId(1)), Some(t(0.0)));
        assert_eq!(s.predicted_start(t(0.0), RequestId(2)), Some(t(100.0)));
        assert_eq!(s.predicted_start(t(0.0), RequestId(3)), Some(t(150.0)));
        assert_eq!(s.predicted_start(t(0.0), RequestId(99)), None);
    }

    #[test]
    #[should_panic(expected = "cannot ever run")]
    fn oversized_request_rejected() {
        let mut s = FcfsScheduler::new(4);
        let mut starts = Vec::new();
        s.submit(t(0.0), req(1, 5, 10.0), &mut starts);
    }
}
