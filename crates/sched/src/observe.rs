//! Observer hook points for scheduler auditing.
//!
//! Schedulers are passive state machines, which makes their decisions
//! easy to *observe*: every externally visible transition — a request
//! entering a queue, a start, a completion, an EASY shadow computation, a
//! CBF reservation — maps to one hook on [`SchedObserver`]. The hooks
//! exist for the invariant auditor in `rbr-audit` (the simulator's
//! sanitizer); production runs keep the [`ObserverSlot`] empty, which
//! compiles down to a branch on a `None` per hook site.
//!
//! All hooks default to no-ops so an observer only implements what it
//! cares about. Hook order is part of the contract: `on_submit` always
//! precedes any `on_start` for the same request, and `on_start` always
//! precedes its `on_finish`.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use rbr_simcore::SimTime;

use crate::types::{Request, RequestId};

/// How a request came to start *now*, from the scheduler's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartKind {
    /// Started as the (priority-then-)FIFO head of the queue: no
    /// earlier-ranked request was left waiting.
    FifoHead,
    /// Jumped ahead of a blocked head under a backfilling rule.
    Backfill,
    /// Started because its CBF reservation came due (reservation-order
    /// starts are neither FIFO nor queue jumps).
    Reservation,
}

impl fmt::Display for StartKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StartKind::FifoHead => "fifo-head",
            StartKind::Backfill => "backfill",
            StartKind::Reservation => "reservation",
        })
    }
}

/// Scheduler-level hook points. `sched` is the index the observer was
/// attached under (the [`crate::SchedulerSet`] target for independent
/// clusters; 0 for a shared-pool scheduler).
pub trait SchedObserver {
    /// The observer was (re-)attached to scheduler `sched` — fired once
    /// at attach time and again whenever the scheduler is rebuilt from
    /// scratch (a cluster outage). All previously observed state for
    /// `sched` is void.
    fn on_attach(&mut self, sched: usize, total_nodes: u32, name: &str) {
        let _ = (sched, total_nodes, name);
    }

    /// `req` was submitted to queue `queue` of scheduler `sched` (queue
    /// is always 0 for single-queue schedulers; lower queues rank first).
    fn on_submit(&mut self, sched: usize, now: SimTime, queue: usize, req: &Request) {
        let _ = (sched, now, queue, req);
    }

    /// `req` starts executing now.
    fn on_start(&mut self, sched: usize, now: SimTime, req: &Request, kind: StartKind) {
        let _ = (sched, now, req, kind);
    }

    /// A running request released its nodes (completion or an aborted
    /// same-instant start).
    fn on_finish(&mut self, sched: usize, now: SimTime, id: RequestId, nodes: u32) {
        let _ = (sched, now, id, nodes);
    }

    /// A queued request was cancelled and removed.
    fn on_cancel(&mut self, sched: usize, now: SimTime, id: RequestId) {
        let _ = (sched, now, id);
    }

    /// EASY recomputed the blocked head's shadow: `head` is guaranteed to
    /// start no later than `shadow`, and backfills outliving the shadow
    /// may use at most `extra` nodes.
    fn on_shadow(
        &mut self,
        sched: usize,
        now: SimTime,
        head: &Request,
        shadow: SimTime,
        extra: u32,
    ) {
        let _ = (sched, now, head, shadow, extra);
    }

    /// CBF (re-)reserved a queued request at `start`.
    fn on_reserve(&mut self, sched: usize, now: SimTime, id: RequestId, start: SimTime) {
        let _ = (sched, now, id, start);
    }
}

/// A shared, interior-mutable observer — one instance watches every
/// scheduler of a set, so cross-scheduler bookkeeping lives in one place.
pub type SharedObserver = Rc<RefCell<dyn SchedObserver>>;

/// The per-scheduler observer slot: empty in production runs (every hook
/// site reduces to an untaken branch), or a [`SharedObserver`] tagged
/// with this scheduler's index.
#[derive(Clone, Default)]
pub struct ObserverSlot(Option<(usize, SharedObserver)>);

impl ObserverSlot {
    /// The empty slot: all hooks are no-ops.
    pub fn empty() -> Self {
        ObserverSlot(None)
    }

    /// A slot delivering hooks tagged with scheduler index `sched`.
    pub fn new(sched: usize, obs: SharedObserver) -> Self {
        ObserverSlot(Some((sched, obs)))
    }

    /// Whether an observer is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Runs `f` against the observer, if any.
    #[inline]
    pub fn with(&self, f: impl FnOnce(usize, &mut dyn SchedObserver)) {
        if let Some((sched, obs)) = &self.0 {
            f(*sched, &mut *obs.borrow_mut());
        }
    }
}

impl fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some((sched, _)) => write!(f, "ObserverSlot(sched {sched})"),
            None => f.write_str("ObserverSlot(empty)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        attaches: usize,
        starts: usize,
    }

    impl SchedObserver for Counter {
        fn on_attach(&mut self, _sched: usize, _total: u32, _name: &str) {
            self.attaches += 1;
        }
        fn on_start(&mut self, _sched: usize, _now: SimTime, _req: &Request, _kind: StartKind) {
            self.starts += 1;
        }
    }

    #[test]
    fn empty_slot_is_inert() {
        let slot = ObserverSlot::empty();
        assert!(!slot.is_attached());
        slot.with(|_, _| panic!("empty slot must never call the closure"));
        assert_eq!(format!("{slot:?}"), "ObserverSlot(empty)");
    }

    #[test]
    fn attached_slot_tags_the_scheduler_index() {
        let obs: Rc<RefCell<Counter>> = Rc::new(RefCell::new(Counter::default()));
        let slot = ObserverSlot::new(3, obs.clone());
        assert!(slot.is_attached());
        let mut seen = None;
        slot.with(|sched, o| {
            seen = Some(sched);
            o.on_attach(sched, 8, "TEST");
        });
        assert_eq!(seen, Some(3));
        assert_eq!(obs.borrow().attaches, 1);
        assert_eq!(format!("{slot:?}"), "ObserverSlot(sched 3)");
    }

    #[test]
    fn clones_share_one_observer() {
        let obs: Rc<RefCell<Counter>> = Rc::new(RefCell::new(Counter::default()));
        let slot = ObserverSlot::new(0, obs.clone());
        let copy = slot.clone();
        let req = Request::new(
            RequestId(1),
            1,
            rbr_simcore::Duration::from_secs(1.0),
            SimTime::ZERO,
        );
        slot.with(|s, o| o.on_start(s, SimTime::ZERO, &req, StartKind::FifoHead));
        copy.with(|s, o| o.on_start(s, SimTime::ZERO, &req, StartKind::Backfill));
        assert_eq!(obs.borrow().starts, 2);
    }
}
