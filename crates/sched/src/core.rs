//! Shared machinery: the node pool and the running set.
//!
//! All three scheduling algorithms share the same notion of "what is
//! running": an allocation of `nodes` until a *requested* end time (the
//! scheduler plans with estimates; actual completions arrive as events,
//! at or before the requested end).

use std::collections::HashMap;

use rbr_simcore::SimTime;

use crate::profile::Profile;
use crate::types::{Request, RequestId};

/// One running allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Running {
    /// The request occupying the nodes.
    pub request: Request,
    /// When it started.
    pub start: SimTime,
    /// When its *requested* compute time expires.
    pub requested_end: SimTime,
}

/// Node pool plus running set; the resource-accounting core of a cluster.
#[derive(Clone, Debug)]
pub struct ClusterCore {
    total: u32,
    free: u32,
    running: HashMap<RequestId, Running>,
}

impl ClusterCore {
    /// An idle cluster of `total` nodes.
    ///
    /// # Panics
    /// Panics if `total == 0`.
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "a cluster needs at least one node");
        ClusterCore {
            total,
            free: total,
            running: HashMap::new(),
        }
    }

    /// Machine size.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Currently idle nodes.
    pub fn free(&self) -> u32 {
        self.free
    }

    /// Number of running allocations.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Whether the given request is currently running.
    pub fn is_running(&self, id: RequestId) -> bool {
        self.running.contains_key(&id)
    }

    /// True if `req` fits in the currently free nodes.
    pub fn fits_now(&self, req: &Request) -> bool {
        req.nodes <= self.free
    }

    /// Starts `req` at `now`, consuming nodes.
    ///
    /// # Panics
    /// Panics if the request does not fit, asks for more nodes than the
    /// machine has, or is already running.
    pub fn start(&mut self, now: SimTime, req: Request) {
        assert!(
            req.nodes <= self.total,
            "request {} wants {} nodes on a {}-node machine",
            req.id,
            req.nodes,
            self.total
        );
        assert!(
            req.nodes <= self.free,
            "request {} started without {} free nodes (have {})",
            req.id,
            req.nodes,
            self.free
        );
        self.free -= req.nodes;
        let prev = self.running.insert(
            req.id,
            Running {
                request: req,
                start: now,
                requested_end: req.end_if_started(now),
            },
        );
        assert!(prev.is_none(), "request {} started twice", req.id);
    }

    /// Removes a running allocation (on completion or an aborted start),
    /// returning its record and freeing its nodes.
    ///
    /// # Panics
    /// Panics if the request is not running.
    pub fn remove(&mut self, id: RequestId) -> Running {
        let rec = self
            .running
            .remove(&id)
            .unwrap_or_else(|| panic!("request {id} is not running"));
        self.free += rec.request.nodes;
        debug_assert!(self.free <= self.total);
        rec
    }

    /// Builds the availability profile implied by the running set: the
    /// currently free nodes now, plus each allocation's nodes released at
    /// its requested end.
    pub fn profile(&self, now: SimTime) -> Profile {
        let mut p = Profile::new(now, self.total, self.free);
        for rec in self.running.values() {
            // Allocations whose requested end has passed (jobs running
            // into their last instants at exactly `now`) release "now".
            let release = rec.requested_end.max(now);
            p.release_at(release, rec.request.nodes);
        }
        p
    }

    /// The EASY shadow computation: given the head request that cannot
    /// start now, returns `(shadow, extra)` where `shadow` is the earliest
    /// instant the head can start according to requested ends, and
    /// `extra` is the number of nodes that will still be free at that
    /// instant after the head starts.
    ///
    /// # Panics
    /// Panics if the head actually fits now (callers must start it
    /// instead) — except for the degenerate case of an unrunnable
    /// request, which is rejected by `start` anyway.
    pub fn shadow(&self, head: &Request) -> (SimTime, u32) {
        assert!(
            head.nodes > self.free,
            "shadow computed for a head request that fits now"
        );
        // Sort running allocations by requested end and accumulate
        // releases until the head fits.
        let mut ends: Vec<(SimTime, u32)> = self
            .running
            .values()
            .map(|r| (r.requested_end, r.request.nodes))
            .collect();
        ends.sort_unstable();
        let mut avail = self.free;
        for (end, nodes) in ends {
            avail += nodes;
            if avail >= head.nodes {
                return (end, avail - head.nodes);
            }
        }
        unreachable!(
            "all allocations released but head ({} nodes) still does not fit on {} total",
            head.nodes, self.total
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::Duration;

    fn req(id: u64, nodes: u32, est: f64, submit: f64) -> Request {
        Request::new(
            RequestId(id),
            nodes,
            Duration::from_secs(est),
            SimTime::from_secs(submit),
        )
    }

    #[test]
    fn start_and_remove_account_nodes() {
        let mut c = ClusterCore::new(16);
        c.start(SimTime::ZERO, req(1, 10, 100.0, 0.0));
        assert_eq!(c.free(), 6);
        assert!(c.is_running(RequestId(1)));
        let rec = c.remove(RequestId(1));
        assert_eq!(rec.requested_end, SimTime::from_secs(100.0));
        assert_eq!(c.free(), 16);
    }

    #[test]
    #[should_panic(expected = "without")]
    fn overcommit_panics() {
        let mut c = ClusterCore::new(8);
        c.start(SimTime::ZERO, req(1, 6, 10.0, 0.0));
        c.start(SimTime::ZERO, req(2, 6, 10.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn remove_unknown_panics() {
        let mut c = ClusterCore::new(8);
        c.remove(RequestId(9));
    }

    #[test]
    fn profile_reflects_running_set() {
        let mut c = ClusterCore::new(10);
        c.start(SimTime::ZERO, req(1, 4, 100.0, 0.0));
        c.start(SimTime::ZERO, req(2, 3, 50.0, 0.0));
        let p = c.profile(SimTime::from_secs(10.0));
        assert_eq!(p.free_at(SimTime::from_secs(10.0)), 3);
        assert_eq!(p.free_at(SimTime::from_secs(50.0)), 6);
        assert_eq!(p.free_at(SimTime::from_secs(100.0)), 10);
    }

    #[test]
    fn profile_clamps_overdue_ends_to_now() {
        let mut c = ClusterCore::new(4);
        c.start(SimTime::ZERO, req(1, 2, 10.0, 0.0));
        // Query the profile after the requested end (the completion event
        // is processed at exactly the requested end in the worst case, but
        // a same-instant query must not underflow).
        let p = c.profile(SimTime::from_secs(10.0));
        assert_eq!(p.free_at(SimTime::from_secs(10.0)), 4);
    }

    #[test]
    fn shadow_accumulates_until_head_fits() {
        let mut c = ClusterCore::new(10);
        c.start(SimTime::ZERO, req(1, 4, 100.0, 0.0)); // ends 100
        c.start(SimTime::ZERO, req(2, 4, 50.0, 0.0)); // ends 50
                                                      // free = 2; head wants 8: needs release at 50 (free 6) then 100
                                                      // (free 10).
        let head = req(3, 8, 10.0, 0.0);
        let (shadow, extra) = c.shadow(&head);
        assert_eq!(shadow, SimTime::from_secs(100.0));
        assert_eq!(extra, 2);
    }

    #[test]
    fn shadow_extra_counts_leftover_nodes() {
        let mut c = ClusterCore::new(10);
        c.start(SimTime::ZERO, req(1, 9, 30.0, 0.0));
        let head = req(2, 5, 10.0, 0.0);
        let (shadow, extra) = c.shadow(&head);
        assert_eq!(shadow, SimTime::from_secs(30.0));
        assert_eq!(extra, 5); // 10 free at 30, head takes 5
    }
}
