//! Shared machinery: the node pool and the running set.
//!
//! All three scheduling algorithms share the same notion of "what is
//! running": an allocation of `nodes` until a *requested* end time (the
//! scheduler plans with estimates; actual completions arrive as events,
//! at or before the requested end).

use std::collections::HashMap;

use rbr_simcore::SimTime;

use crate::profile::Profile;
use crate::types::{Request, RequestId};

/// One running allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Running {
    /// The request occupying the nodes.
    pub request: Request,
    /// When it started.
    pub start: SimTime,
    /// When its *requested* compute time expires.
    pub requested_end: SimTime,
}

/// Node pool plus running set; the resource-accounting core of a cluster.
#[derive(Clone, Debug)]
pub struct ClusterCore {
    total: u32,
    free: u32,
    running: HashMap<RequestId, Running>,
    /// The running set's `(requested_end, nodes)` pairs, kept sorted —
    /// the incrementally maintained state behind [`ClusterCore::shadow`]
    /// and [`ClusterCore::profile`]. Updated only on [`ClusterCore::start`]
    /// and [`ClusterCore::remove`] (the reserve/release events), so the
    /// backfilling hot paths scan it without collecting or sorting.
    ///
    /// Equal pairs are interchangeable in every consumer (the shadow fold
    /// and the profile build both depend only on the sorted multiset), so
    /// this is behaviourally identical to the sort-per-call it replaces.
    ends: Vec<(SimTime, u32)>,
}

impl ClusterCore {
    /// An idle cluster of `total` nodes.
    ///
    /// # Panics
    /// Panics if `total == 0`.
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "a cluster needs at least one node");
        ClusterCore {
            total,
            free: total,
            running: HashMap::new(),
            ends: Vec::new(),
        }
    }

    /// Machine size.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Currently idle nodes.
    pub fn free(&self) -> u32 {
        self.free
    }

    /// Number of running allocations.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Whether the given request is currently running.
    pub fn is_running(&self, id: RequestId) -> bool {
        self.running.contains_key(&id)
    }

    /// True if `req` fits in the currently free nodes.
    pub fn fits_now(&self, req: &Request) -> bool {
        req.nodes <= self.free
    }

    /// Starts `req` at `now`, consuming nodes.
    ///
    /// # Panics
    /// Panics if the request does not fit, asks for more nodes than the
    /// machine has, or is already running.
    pub fn start(&mut self, now: SimTime, req: Request) {
        assert!(
            req.nodes <= self.total,
            "request {} wants {} nodes on a {}-node machine",
            req.id,
            req.nodes,
            self.total
        );
        assert!(
            req.nodes <= self.free,
            "request {} started without {} free nodes (have {})",
            req.id,
            req.nodes,
            self.free
        );
        self.free -= req.nodes;
        let requested_end = req.end_if_started(now);
        let prev = self.running.insert(
            req.id,
            Running {
                request: req,
                start: now,
                requested_end,
            },
        );
        assert!(prev.is_none(), "request {} started twice", req.id);
        let key = (requested_end, req.nodes);
        let i = self.ends.partition_point(|&e| e <= key);
        self.ends.insert(i, key);
    }

    /// Removes a running allocation (on completion or an aborted start),
    /// returning its record and freeing its nodes.
    ///
    /// # Panics
    /// Panics if the request is not running.
    pub fn remove(&mut self, id: RequestId) -> Running {
        let rec = self
            .running
            .remove(&id)
            .unwrap_or_else(|| panic!("request {id} is not running"));
        self.free += rec.request.nodes;
        debug_assert!(self.free <= self.total);
        let key = (rec.requested_end, rec.request.nodes);
        let i = self.ends.partition_point(|&e| e < key);
        debug_assert!(self.ends.get(i) == Some(&key), "ends out of sync");
        self.ends.remove(i);
        rec
    }

    /// Builds the availability profile implied by the running set: the
    /// currently free nodes now, plus each allocation's nodes released at
    /// its requested end.
    ///
    /// Because the release times are already kept sorted, the whole step
    /// list is produced in one pass — no per-allocation insertion into the
    /// profile. Releases are commutative additions, so the result equals
    /// the old build that replayed the running set in hash order.
    pub fn profile(&self, now: SimTime) -> Profile {
        let mut steps = Vec::with_capacity(self.ends.len() + 1);
        let mut level = self.free;
        steps.push((now, level));
        for &(end, nodes) in &self.ends {
            // Allocations whose requested end has passed (jobs running
            // into their last instants at exactly `now`) release "now".
            let release = end.max(now);
            level += nodes;
            let last = steps.last_mut().expect("steps never empty");
            if last.0 == release {
                last.1 = level;
            } else {
                steps.push((release, level));
            }
        }
        Profile::from_sorted_steps(steps, self.total)
    }

    /// The EASY shadow computation: given the head request that cannot
    /// start now, returns `(shadow, extra)` where `shadow` is the earliest
    /// instant the head can start according to requested ends, and
    /// `extra` is the number of nodes that will still be free at that
    /// instant after the head starts.
    ///
    /// # Panics
    /// Panics if the head actually fits now (callers must start it
    /// instead) — except for the degenerate case of an unrunnable
    /// request, which is rejected by `start` anyway.
    pub fn shadow(&self, head: &Request) -> (SimTime, u32) {
        assert!(
            head.nodes > self.free,
            "shadow computed for a head request that fits now"
        );
        // Accumulate releases in end order until the head fits; the
        // sorted list is maintained incrementally, so this is a plain
        // prefix scan with no allocation.
        let mut avail = self.free;
        for &(end, nodes) in &self.ends {
            avail += nodes;
            if avail >= head.nodes {
                return (end, avail - head.nodes);
            }
        }
        unreachable!(
            "all allocations released but head ({} nodes) still does not fit on {} total",
            head.nodes, self.total
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::Duration;

    fn req(id: u64, nodes: u32, est: f64, submit: f64) -> Request {
        Request::new(
            RequestId(id),
            nodes,
            Duration::from_secs(est),
            SimTime::from_secs(submit),
        )
    }

    #[test]
    fn start_and_remove_account_nodes() {
        let mut c = ClusterCore::new(16);
        c.start(SimTime::ZERO, req(1, 10, 100.0, 0.0));
        assert_eq!(c.free(), 6);
        assert!(c.is_running(RequestId(1)));
        let rec = c.remove(RequestId(1));
        assert_eq!(rec.requested_end, SimTime::from_secs(100.0));
        assert_eq!(c.free(), 16);
    }

    #[test]
    #[should_panic(expected = "without")]
    fn overcommit_panics() {
        let mut c = ClusterCore::new(8);
        c.start(SimTime::ZERO, req(1, 6, 10.0, 0.0));
        c.start(SimTime::ZERO, req(2, 6, 10.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn remove_unknown_panics() {
        let mut c = ClusterCore::new(8);
        c.remove(RequestId(9));
    }

    #[test]
    fn profile_reflects_running_set() {
        let mut c = ClusterCore::new(10);
        c.start(SimTime::ZERO, req(1, 4, 100.0, 0.0));
        c.start(SimTime::ZERO, req(2, 3, 50.0, 0.0));
        let p = c.profile(SimTime::from_secs(10.0));
        assert_eq!(p.free_at(SimTime::from_secs(10.0)), 3);
        assert_eq!(p.free_at(SimTime::from_secs(50.0)), 6);
        assert_eq!(p.free_at(SimTime::from_secs(100.0)), 10);
    }

    #[test]
    fn profile_clamps_overdue_ends_to_now() {
        let mut c = ClusterCore::new(4);
        c.start(SimTime::ZERO, req(1, 2, 10.0, 0.0));
        // Query the profile after the requested end (the completion event
        // is processed at exactly the requested end in the worst case, but
        // a same-instant query must not underflow).
        let p = c.profile(SimTime::from_secs(10.0));
        assert_eq!(p.free_at(SimTime::from_secs(10.0)), 4);
    }

    #[test]
    fn shadow_accumulates_until_head_fits() {
        let mut c = ClusterCore::new(10);
        c.start(SimTime::ZERO, req(1, 4, 100.0, 0.0)); // ends 100
        c.start(SimTime::ZERO, req(2, 4, 50.0, 0.0)); // ends 50
                                                      // free = 2; head wants 8: needs release at 50 (free 6) then 100
                                                      // (free 10).
        let head = req(3, 8, 10.0, 0.0);
        let (shadow, extra) = c.shadow(&head);
        assert_eq!(shadow, SimTime::from_secs(100.0));
        assert_eq!(extra, 2);
    }

    /// The incrementally maintained end list must stay the sorted
    /// multiset of the running set's `(requested_end, nodes)` pairs
    /// through arbitrary start/remove churn, and the one-pass profile
    /// build must equal the replay-every-release build it replaced.
    #[test]
    fn ends_stay_in_sync_through_churn() {
        let mut c = ClusterCore::new(64);
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut live: Vec<u64> = Vec::new();
        for i in 0..200u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let now = SimTime::from_micros(i * 7);
            if live.len() > 3 && x.is_multiple_of(3) {
                let id = live.remove((x as usize / 3) % live.len());
                c.remove(RequestId(id));
            } else {
                let nodes = 1 + (x % 4) as u32;
                // Duplicate (end, nodes) pairs on purpose: estimates from
                // a small set collide constantly.
                let est = [10.0, 10.0, 50.0][(x as usize >> 8) % 3];
                if nodes <= c.free() {
                    c.start(now, req(i, nodes, est, 0.0));
                    live.push(i);
                }
            }
            // The list is the sorted multiset of the running set.
            let mut expect: Vec<(SimTime, u32)> = live
                .iter()
                .map(|&id| {
                    let r = &c.running[&RequestId(id)];
                    (r.requested_end, r.request.nodes)
                })
                .collect();
            expect.sort_unstable();
            assert_eq!(c.ends, expect, "step {i}");
            // The fast profile build equals the incremental one.
            let now = SimTime::from_micros(i * 7);
            let mut slow = Profile::new(now, c.total(), c.free());
            for r in c.running.values() {
                slow.release_at(r.requested_end.max(now), r.request.nodes);
            }
            assert_eq!(c.profile(now), slow, "step {i}");
        }
    }

    #[test]
    fn shadow_extra_counts_leftover_nodes() {
        let mut c = ClusterCore::new(10);
        c.start(SimTime::ZERO, req(1, 9, 30.0, 0.0));
        let head = req(2, 5, 10.0, 0.0);
        let (shadow, extra) = c.shadow(&head);
        assert_eq!(shadow, SimTime::from_secs(30.0));
        assert_eq!(extra, 5); // 10 free at 30, head takes 5
    }
}
