//! One object-safe interface over "the places a request can be sent".
//!
//! The grid's submission protocols differ in *what* a redundant copy is
//! (a remote cluster, a priority queue, a node-count shape) but not in
//! the conversation they hold with the batch layer: submit, cancel,
//! complete, abort, observe queue lengths. [`SchedulerSet`] captures that
//! conversation once, addressed by a dense **target** index, so one
//! simulation driver can pump any protocol:
//!
//! * [`ClusterSet`] — one independent [`Scheduler`] per target (the
//!   multi-cluster platform; a single-cluster run is the 1-target case);
//! * [`MultiQueueSet`] — one [`MultiQueueScheduler`] whose priority
//!   queues are the targets, all sharing a single node pool.
//!
//! A start reported by any call is attributed to the request, not the
//! target the call addressed: with a shared node pool, submitting to one
//! queue can start requests from another (cross-queue backfill), so
//! callers must map started ids back to their own bookkeeping.

use rbr_simcore::{Duration, SimTime};

use crate::multi_queue::MultiQueueScheduler;
use crate::observe::{ObserverSlot, SharedObserver};
use crate::scheduler::{Algorithm, Scheduler};
use crate::types::{Request, RequestId};

/// An object-safe set of submission targets over one or more schedulers.
///
/// Targets are dense indices `0..n_targets()`. Every mutating call
/// appends the ids of requests that start executing *now* to `starts`,
/// in start order — exactly the [`Scheduler`] contract, lifted over a
/// set.
pub trait SchedulerSet {
    /// Number of submission targets.
    fn n_targets(&self) -> usize;

    /// Submits `req` to `target`.
    fn submit(&mut self, now: SimTime, target: usize, req: Request, starts: &mut Vec<RequestId>);

    /// Cancels a queued request at `target`. Returns `true` if it was
    /// queued and has been removed (the redundant-request protocol makes
    /// unknown/raced ids normal, so `false` is not an error).
    fn cancel(
        &mut self,
        now: SimTime,
        target: usize,
        id: RequestId,
        starts: &mut Vec<RequestId>,
    ) -> bool;

    /// Reports that a running request at `target` finished.
    fn complete(&mut self, now: SimTime, target: usize, id: RequestId, starts: &mut Vec<RequestId>);

    /// Revokes a start the driver refused to commit (the job began
    /// elsewhere at this exact instant).
    fn abort(&mut self, now: SimTime, target: usize, id: RequestId, starts: &mut Vec<RequestId>);

    /// Number of queued requests at `target`.
    fn queue_len(&self, target: usize) -> usize;

    /// Machine size reachable from `target`, in nodes.
    fn total_nodes(&self, target: usize) -> u32;

    /// The scheduler's own queue-wait forecast for a request at `target`
    /// (Section 5's predictor), or `None` when the underlying scheduler
    /// does not support prediction.
    fn predicted_start(&self, now: SimTime, target: usize, id: RequestId) -> Option<SimTime>;

    /// Out-of-order starts summed over the whole set.
    fn backfills(&self) -> u64;

    /// Destroys all scheduler state behind `target` (a cluster outage):
    /// queued requests evaporate, running allocations are forgotten. For
    /// shared-pool sets this resets every target sharing the pool.
    fn restart(&mut self, target: usize);

    /// Sizes of the *distinct* node pools behind the set, for capacity
    /// accounting. Independent clusters contribute one entry each; a
    /// multi-queue scheduler contributes a single shared entry.
    fn pool_nodes(&self) -> Vec<u32>;

    /// Attaches one observer to every scheduler of the set, tagged with
    /// its target index, and keeps it attached across [`Self::restart`]s
    /// (a restart fires a fresh `on_attach` for the rebuilt scheduler).
    /// The default implementation discards the observer.
    fn attach_observer(&mut self, _obs: SharedObserver) {}
}

/// One independent scheduler per target: the multi-cluster platform (and
/// its 1-cluster special case).
pub struct ClusterSet {
    scheds: Vec<Box<dyn Scheduler>>,
    nodes: Vec<u32>,
    algorithm: Algorithm,
    cbf_cycle: Duration,
    observer: Option<SharedObserver>,
}

impl ClusterSet {
    /// Builds `algorithm` on every cluster in `nodes`.
    pub fn new(algorithm: Algorithm, cbf_cycle: Duration, nodes: &[u32]) -> Self {
        ClusterSet {
            scheds: nodes
                .iter()
                .map(|&n| algorithm.build_with_cycle(n, cbf_cycle))
                .collect(),
            nodes: nodes.to_vec(),
            algorithm,
            cbf_cycle,
            observer: None,
        }
    }
}

impl SchedulerSet for ClusterSet {
    fn n_targets(&self) -> usize {
        self.scheds.len()
    }

    fn submit(&mut self, now: SimTime, target: usize, req: Request, starts: &mut Vec<RequestId>) {
        self.scheds[target].submit(now, req, starts);
    }

    fn cancel(
        &mut self,
        now: SimTime,
        target: usize,
        id: RequestId,
        starts: &mut Vec<RequestId>,
    ) -> bool {
        self.scheds[target].cancel(now, id, starts)
    }

    fn complete(
        &mut self,
        now: SimTime,
        target: usize,
        id: RequestId,
        starts: &mut Vec<RequestId>,
    ) {
        self.scheds[target].complete(now, id, starts);
    }

    fn abort(&mut self, now: SimTime, target: usize, id: RequestId, starts: &mut Vec<RequestId>) {
        self.scheds[target].abort(now, id, starts);
    }

    fn queue_len(&self, target: usize) -> usize {
        self.scheds[target].queue_len()
    }

    fn total_nodes(&self, target: usize) -> u32 {
        self.scheds[target].total_nodes()
    }

    fn predicted_start(&self, now: SimTime, target: usize, id: RequestId) -> Option<SimTime> {
        self.scheds[target].predicted_start(now, id)
    }

    fn backfills(&self) -> u64 {
        self.scheds.iter().map(|s| s.backfills()).sum()
    }

    fn restart(&mut self, target: usize) {
        self.scheds[target] = self
            .algorithm
            .build_with_cycle(self.nodes[target], self.cbf_cycle);
        if let Some(obs) = &self.observer {
            // Re-attach so the observer learns the target was wiped.
            self.scheds[target].attach_observer(ObserverSlot::new(target, obs.clone()));
        }
    }

    fn pool_nodes(&self) -> Vec<u32> {
        self.nodes.clone()
    }

    fn attach_observer(&mut self, obs: SharedObserver) {
        for (i, sched) in self.scheds.iter_mut().enumerate() {
            sched.attach_observer(ObserverSlot::new(i, obs.clone()));
        }
        self.observer = Some(obs);
    }
}

/// One [`MultiQueueScheduler`] whose priority queues are the targets,
/// sharing a single node pool.
pub struct MultiQueueSet {
    sched: MultiQueueScheduler,
    nodes: u32,
    n_queues: usize,
    observer: Option<SharedObserver>,
}

impl MultiQueueSet {
    /// A shared pool of `nodes` nodes behind `n_queues` priority-ordered
    /// queues (queue 0 = premium, served first).
    pub fn new(nodes: u32, n_queues: usize) -> Self {
        MultiQueueSet {
            sched: MultiQueueScheduler::new(nodes, n_queues),
            nodes,
            n_queues,
            observer: None,
        }
    }
}

impl SchedulerSet for MultiQueueSet {
    fn n_targets(&self) -> usize {
        self.n_queues
    }

    fn submit(&mut self, now: SimTime, target: usize, req: Request, starts: &mut Vec<RequestId>) {
        self.sched.submit(now, target, req, starts);
    }

    fn cancel(
        &mut self,
        now: SimTime,
        _target: usize,
        id: RequestId,
        starts: &mut Vec<RequestId>,
    ) -> bool {
        // The scheduler searches every queue; ids are globally unique.
        self.sched.cancel(now, id, starts)
    }

    fn complete(
        &mut self,
        now: SimTime,
        _target: usize,
        id: RequestId,
        starts: &mut Vec<RequestId>,
    ) {
        self.sched.complete(now, id, starts);
    }

    fn abort(&mut self, now: SimTime, _target: usize, id: RequestId, starts: &mut Vec<RequestId>) {
        self.sched.abort(now, id, starts);
    }

    fn queue_len(&self, target: usize) -> usize {
        self.sched.queue_len(target)
    }

    fn total_nodes(&self, _target: usize) -> u32 {
        self.sched.total_nodes()
    }

    fn predicted_start(&self, _now: SimTime, _target: usize, _id: RequestId) -> Option<SimTime> {
        None
    }

    fn backfills(&self) -> u64 {
        self.sched.backfills()
    }

    fn restart(&mut self, _target: usize) {
        // The queues share one pool and one scheduler: an outage takes
        // down all of them.
        self.sched = MultiQueueScheduler::new(self.nodes, self.n_queues);
        if let Some(obs) = &self.observer {
            self.sched
                .attach_observer(ObserverSlot::new(0, obs.clone()));
        }
    }

    fn pool_nodes(&self) -> Vec<u32> {
        vec![self.nodes]
    }

    fn attach_observer(&mut self, obs: SharedObserver) {
        // One shared-pool scheduler: all queues report as scheduler 0.
        self.sched
            .attach_observer(ObserverSlot::new(0, obs.clone()));
        self.observer = Some(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::Duration;

    fn req(id: u64, nodes: u32, est: f64) -> Request {
        Request::new(
            RequestId(id),
            nodes,
            Duration::from_secs(est),
            SimTime::ZERO,
        )
    }
    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn cluster_set_routes_by_target() {
        let mut set = ClusterSet::new(Algorithm::Easy, Duration::ZERO, &[4, 8]);
        assert_eq!(set.n_targets(), 2);
        assert_eq!(set.total_nodes(0), 4);
        assert_eq!(set.total_nodes(1), 8);
        assert_eq!(set.pool_nodes(), vec![4, 8]);
        let mut starts = Vec::new();
        set.submit(t(0.0), 0, req(1, 4, 10.0), &mut starts);
        set.submit(t(0.0), 1, req(2, 8, 10.0), &mut starts);
        assert_eq!(starts, vec![RequestId(1), RequestId(2)]);
        assert_eq!(set.queue_len(0), 0);
    }

    #[test]
    fn cluster_set_restart_wipes_one_target_only() {
        let mut set = ClusterSet::new(Algorithm::Easy, Duration::ZERO, &[4, 4]);
        let mut starts = Vec::new();
        set.submit(t(0.0), 0, req(1, 4, 10.0), &mut starts);
        set.submit(t(0.0), 0, req(2, 4, 10.0), &mut starts); // queued behind 1
        set.submit(t(0.0), 1, req(3, 4, 10.0), &mut starts);
        assert_eq!(set.queue_len(0), 1);
        set.restart(0);
        assert_eq!(set.queue_len(0), 0, "outage evaporates the queue");
        // Target 1 is untouched: its request is still running.
        starts.clear();
        set.complete(t(10.0), 1, RequestId(3), &mut starts);
    }

    #[test]
    fn multi_queue_set_shares_one_pool() {
        let mut set = MultiQueueSet::new(4, 2);
        assert_eq!(set.n_targets(), 2);
        assert_eq!(set.pool_nodes(), vec![4], "queues share a single pool");
        let mut starts = Vec::new();
        set.submit(t(0.0), 1, req(1, 4, 10.0), &mut starts);
        set.submit(t(0.0), 0, req(2, 4, 10.0), &mut starts);
        assert_eq!(starts, vec![RequestId(1)]);
        assert_eq!(set.queue_len(0), 1);
        // Completing via either target drains the premium queue.
        starts.clear();
        set.complete(t(10.0), 1, RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(2)]);
    }

    #[test]
    fn multi_queue_cancel_searches_all_queues() {
        let mut set = MultiQueueSet::new(2, 2);
        let mut starts = Vec::new();
        set.submit(t(0.0), 0, req(1, 2, 10.0), &mut starts);
        set.submit(t(0.0), 1, req(2, 2, 10.0), &mut starts);
        // Target hint is wrong on purpose: cancel still finds the id.
        assert!(set.cancel(t(0.0), 0, RequestId(2), &mut starts));
        assert!(!set.cancel(t(0.0), 0, RequestId(2), &mut starts));
    }
}
