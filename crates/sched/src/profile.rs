//! The availability profile: free nodes as a piecewise-constant function
//! of future time.
//!
//! Both backfilling algorithms reason about the future: EASY computes the
//! head job's shadow time, CBF assigns every queued request a reservation.
//! The profile is the shared data structure: a sorted step list
//! `(time, free)` where entry `i` holds from `steps[i].0` until
//! `steps[i+1].0`, and the final entry extends to infinity.

use rbr_simcore::{Duration, SimTime};

/// Piecewise-constant free-node timeline starting at some instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Profile {
    /// `(start, free)` steps, strictly increasing in time; never empty.
    steps: Vec<(SimTime, u32)>,
    total: u32,
}

impl Profile {
    /// A profile with `free` nodes available from `now` onwards, on a
    /// machine of `total` nodes.
    ///
    /// # Panics
    /// Panics if `free > total`.
    pub fn new(now: SimTime, total: u32, free: u32) -> Self {
        assert!(free <= total, "free nodes {free} exceed total {total}");
        Profile {
            steps: vec![(now, free)],
            total,
        }
    }

    /// Builds a profile directly from a pre-sorted step list — the fast
    /// path for [`ClusterCore::profile`](crate::core::ClusterCore), which
    /// maintains its release times in sorted order and can therefore
    /// produce the whole step list in one pass instead of paying
    /// [`Profile::release_at`]'s insert-and-raise per allocation. The
    /// result is element-for-element identical to the incremental build.
    ///
    /// # Panics
    /// Panics if the list is empty or its final level exceeds `total`
    /// (levels are non-decreasing in a release-only build, so checking
    /// the last suffices); strict time monotonicity is debug-asserted.
    pub(crate) fn from_sorted_steps(steps: Vec<(SimTime, u32)>, total: u32) -> Self {
        assert!(!steps.is_empty(), "a profile needs at least its origin");
        assert!(
            steps.last().expect("non-empty").1 <= total,
            "profile overflow: {} free on a {total}-node machine",
            steps.last().expect("non-empty").1,
        );
        debug_assert!(
            steps
                .windows(2)
                .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
            "release steps must be strictly increasing in time and \
             non-decreasing in level"
        );
        Profile { steps, total }
    }

    /// Machine size.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// The step list (for inspection/tests).
    pub fn steps(&self) -> &[(SimTime, u32)] {
        &self.steps
    }

    /// A compact rendering of the profile for panic messages: origin,
    /// machine size, and the step list — enough context to make an audit
    /// report or assertion failure actionable without a debugger.
    fn context(&self) -> String {
        let steps: Vec<String> = self
            .steps
            .iter()
            .map(|&(t, f)| format!("{t}→{f}"))
            .collect();
        format!(
            "profile[origin {}, total {}, {} steps: {}]",
            self.steps[0].0,
            self.total,
            self.steps.len(),
            steps.join(", ")
        )
    }

    /// Free nodes at instant `t` (must not precede the profile origin).
    pub fn free_at(&self, t: SimTime) -> u32 {
        assert!(
            t >= self.steps[0].0,
            "free_at query at {t} precedes profile origin {}; {}",
            self.steps[0].0,
            self.context()
        );
        let i = self.steps.partition_point(|&(s, _)| s <= t);
        self.steps[i - 1].1
    }

    /// Declares that `nodes` nodes become free again at `release` — i.e. a
    /// running or reserved allocation occupies them from the profile
    /// origin until `release`.
    ///
    /// Used when building a profile from the running set: the origin
    /// profile starts with the machine's currently-free nodes, and each
    /// running job adds its nodes back at its (requested) end time.
    pub fn release_at(&mut self, release: SimTime, nodes: u32) {
        if nodes == 0 {
            return;
        }
        let idx = self.ensure_step(release);
        for step in &mut self.steps[idx..] {
            step.1 += nodes;
            assert!(
                step.1 <= self.total,
                "profile overflow: {} free on a {}-node machine",
                step.1,
                self.total
            );
        }
    }

    /// Reserves `nodes` nodes over `[start, start + dur)`.
    ///
    /// # Panics
    /// Panics if the interval does not have `nodes` free throughout —
    /// callers must find the slot with [`Profile::earliest_fit`] first.
    pub fn reserve(&mut self, start: SimTime, dur: Duration, nodes: u32) {
        if nodes == 0 || dur.is_zero() {
            return;
        }
        let end = start + dur;
        let from = self.ensure_step(start);
        let to = self.ensure_step(end);
        for i in from..to {
            assert!(
                self.steps[i].1 >= nodes,
                "reservation underflow at {}: {} free < {} needed \
                 (reserving {nodes} nodes over [{start}, {end}) on {})",
                self.steps[i].0,
                self.steps[i].1,
                nodes,
                self.context()
            );
            self.steps[i].1 -= nodes;
        }
    }

    /// Earliest instant `t ≥ not_before` such that `nodes` nodes are free
    /// throughout `[t, t + dur)`.
    ///
    /// # Panics
    /// Panics if `nodes` exceeds the machine size (such a request can
    /// never be scheduled) or `not_before` precedes the profile origin.
    pub fn earliest_fit(&self, not_before: SimTime, dur: Duration, nodes: u32) -> SimTime {
        assert!(
            nodes <= self.total,
            "request for {nodes} nodes on a {}-node machine \
             (earliest_fit from {not_before} for {dur}; {})",
            self.total,
            self.context()
        );
        assert!(
            not_before >= self.steps[0].0,
            "earliest_fit from {not_before} precedes profile origin {} \
             (request: {nodes} nodes for {dur}; {})",
            self.steps[0].0,
            self.context()
        );
        if nodes == 0 || dur.is_zero() {
            return not_before;
        }
        // Candidate anchors are `not_before` and every later step start.
        let mut anchor = not_before;
        let mut i = self.steps.partition_point(|&(s, _)| s <= anchor) - 1;
        'outer: loop {
            // Check [anchor, anchor + dur) starting from step i.
            let end = anchor.saturating_add(dur);
            let mut j = i;
            while j < self.steps.len() && self.steps[j].0 < end {
                if self.steps[j].1 < nodes {
                    // Conflict: next candidate anchor is the first step
                    // after the conflict with enough free nodes.
                    let mut k = j + 1;
                    while k < self.steps.len() && self.steps[k].1 < nodes {
                        k += 1;
                    }
                    if k == self.steps.len() {
                        // Beyond the last step everything stays at the
                        // final level, which must be insufficient — but
                        // the final level always has every allocation
                        // released, so this cannot happen unless the
                        // caller built a profile that never frees nodes.
                        let (t, f) = *self.steps.last().expect("profile never empty");
                        assert!(
                            f >= nodes,
                            "profile tail has {f} free nodes forever; request for \
                             {nodes} nodes for {dur} from {not_before} can never fit ({})",
                            self.context()
                        );
                        anchor = t;
                        i = self.steps.len() - 1;
                        continue 'outer;
                    }
                    anchor = self.steps[k].0;
                    i = k;
                    continue 'outer;
                }
                j += 1;
            }
            return anchor;
        }
    }

    /// Ensures a step boundary exists exactly at `t` and returns its
    /// index. If `t` precedes the origin the origin index is returned.
    fn ensure_step(&mut self, t: SimTime) -> usize {
        if t <= self.steps[0].0 {
            return 0;
        }
        let i = self.steps.partition_point(|&(s, _)| s < t);
        if self.steps.get(i).is_some_and(|&(s, _)| s == t) {
            return i;
        }
        let level = self.steps[i - 1].1;
        self.steps.insert(i, (t, level));
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn empty_machine_fits_immediately() {
        let p = Profile::new(t(0.0), 128, 128);
        assert_eq!(p.earliest_fit(t(0.0), d(3600.0), 128), t(0.0));
    }

    #[test]
    fn release_raises_future_levels() {
        // 64 nodes busy until t=100.
        let mut p = Profile::new(t(0.0), 128, 64);
        p.release_at(t(100.0), 64);
        assert_eq!(p.free_at(t(0.0)), 64);
        assert_eq!(p.free_at(t(99.0)), 64);
        assert_eq!(p.free_at(t(100.0)), 128);
        // A 100-node job must wait for the release.
        assert_eq!(p.earliest_fit(t(0.0), d(50.0), 100), t(100.0));
        // A 64-node job fits now.
        assert_eq!(p.earliest_fit(t(0.0), d(50.0), 64), t(0.0));
    }

    #[test]
    fn reserve_consumes_capacity() {
        let mut p = Profile::new(t(0.0), 10, 10);
        p.reserve(t(0.0), d(100.0), 6);
        assert_eq!(p.free_at(t(0.0)), 4);
        assert_eq!(p.free_at(t(100.0)), 10);
        // 5 nodes cannot fit under the reservation; must wait until 100.
        assert_eq!(p.earliest_fit(t(0.0), d(10.0), 5), t(100.0));
        // 4 nodes fit alongside.
        assert_eq!(p.earliest_fit(t(0.0), d(10.0), 4), t(0.0));
    }

    #[test]
    fn fit_slides_past_busy_windows() {
        let mut p = Profile::new(t(0.0), 8, 8);
        p.reserve(t(10.0), d(20.0), 8); // machine fully busy [10, 30)
                                        // A long job starting now would overlap the busy window.
        assert_eq!(p.earliest_fit(t(0.0), d(15.0), 1), t(30.0));
        // A short job fits in the initial hole.
        assert_eq!(p.earliest_fit(t(0.0), d(10.0), 1), t(0.0));
        // Starting search inside the busy window jumps past it.
        assert_eq!(p.earliest_fit(t(15.0), d(1.0), 1), t(30.0));
    }

    #[test]
    fn fit_between_two_reservations() {
        let mut p = Profile::new(t(0.0), 4, 4);
        p.reserve(t(0.0), d(10.0), 4); // busy [0,10)
        p.reserve(t(20.0), d(10.0), 4); // busy [20,30)
                                        // 10-second hole at [10,20) fits a 10 s job exactly.
        assert_eq!(p.earliest_fit(t(0.0), d(10.0), 4), t(10.0));
        // An 11-second job cannot use the hole.
        assert_eq!(p.earliest_fit(t(0.0), d(11.0), 4), t(30.0));
    }

    #[test]
    fn zero_duration_fits_anywhere() {
        let mut p = Profile::new(t(0.0), 4, 0);
        p.release_at(t(100.0), 4);
        assert_eq!(p.earliest_fit(t(5.0), Duration::ZERO, 4), t(5.0));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn reserve_without_capacity_panics() {
        let mut p = Profile::new(t(0.0), 4, 2);
        p.reserve(t(0.0), d(10.0), 3);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn free_above_total_rejected() {
        let _ = Profile::new(t(0.0), 4, 5);
    }

    #[test]
    #[should_panic(expected = "never fit")]
    fn oversized_forever_request_detected() {
        // A profile whose tail never frees enough nodes: 2 of 4 nodes are
        // busy with no release recorded (a malformed caller profile).
        let p = Profile::new(t(0.0), 4, 2);
        let _ = p.earliest_fit(t(0.0), d(1.0), 3);
    }

    #[test]
    fn long_reservation_tail_recovers() {
        // reserve() records the release, so capacity reappears after even
        // a very long reservation and a wide job fits there.
        let mut p = Profile::new(t(0.0), 4, 4);
        p.reserve(t(0.0), Duration::from_hours(1_000_000), 2);
        let fit = p.earliest_fit(t(0.0), d(1.0), 3);
        assert_eq!(fit, t(0.0) + Duration::from_hours(1_000_000));
    }

    /// Regression: queries exactly at a step boundary must return the
    /// level *starting* at that boundary, not the level before it, for
    /// every query entry point.
    #[test]
    fn queries_exactly_at_step_boundaries() {
        let mut p = Profile::new(t(0.0), 8, 4);
        p.release_at(t(100.0), 4); // boundary at exactly t=100
                                   // free_at at the boundary sees the post-release level.
        assert_eq!(p.free_at(t(100.0)), 8);
        // free_at at the origin boundary sees the origin level.
        assert_eq!(p.free_at(t(0.0)), 4);
        // earliest_fit anchored exactly at the boundary fits immediately.
        assert_eq!(p.earliest_fit(t(100.0), d(10.0), 8), t(100.0));
        // earliest_fit for a job needing the boundary release lands on it.
        assert_eq!(p.earliest_fit(t(0.0), d(10.0), 8), t(100.0));
    }

    #[test]
    fn panic_messages_carry_profile_context() {
        let mut p = Profile::new(t(5.0), 8, 4);
        p.release_at(t(100.0), 4);
        // A query before the origin must name the origin, the query, and
        // the step list — the context an audit report needs.
        let err = std::panic::catch_unwind(|| p.free_at(t(1.0))).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("assert! panics with a String");
        assert!(msg.contains("precedes profile origin"), "{msg}");
        assert!(msg.contains("origin 5.000s"), "{msg}");
        assert!(msg.contains("2 steps"), "{msg}");
    }

    #[test]
    fn ensure_step_is_idempotent() {
        let mut p = Profile::new(t(0.0), 8, 8);
        p.reserve(t(10.0), d(10.0), 4);
        p.reserve(t(10.0), d(10.0), 4);
        assert_eq!(p.free_at(t(15.0)), 0);
        assert_eq!(p.free_at(t(20.0)), 8);
        // Step list stays strictly increasing.
        for w in p.steps().windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }
}
