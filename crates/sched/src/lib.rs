//! # rbr-sched
//!
//! Single-cluster batch schedulers, the substrate of Section 3 of the
//! paper:
//!
//! * [`FcfsScheduler`] — First-Come-First-Serve, the baseline comparator;
//! * [`EasyScheduler`] — EASY aggressive backfilling (Lifka, JSSPP'95),
//!   "representative of algorithms running in deployed systems today";
//! * [`CbfScheduler`] — Conservative Backfilling (Mu'alem & Feitelson,
//!   TPDS'01) with reservation compression; its reservations double as the
//!   queue-waiting-time predictor of Section 5.
//!
//! Each scheduler manages one queue of [`Request`]s over an anonymous pool
//! of identical nodes (the paper models a single queue and no priorities).
//! Schedulers are passive state machines driven by the event loop of
//! `rbr-grid`: every resource-changing call reports, through an output
//! vector, the requests that begin execution *now*.
//!
//! ```
//! use rbr_sched::{Algorithm, Request, RequestId, Scheduler};
//! use rbr_simcore::{Duration, SimTime};
//!
//! let mut sched = Algorithm::Easy.build(128);
//! let mut starts = Vec::new();
//! let req = Request::new(RequestId(1), 64, Duration::from_secs(3600.0), SimTime::ZERO);
//! sched.submit(SimTime::ZERO, req, &mut starts);
//! assert_eq!(starts, vec![RequestId(1)]); // empty machine: starts at once
//! ```

pub mod cbf;
pub mod core;
pub mod easy;
pub mod facade;
pub mod fcfs;
pub mod multi_queue;
pub mod observe;
pub mod profile;
pub mod scheduler;
pub mod types;

pub use cbf::CbfScheduler;
pub use easy::EasyScheduler;
pub use facade::{ClusterSet, MultiQueueSet, SchedulerSet};
pub use fcfs::FcfsScheduler;
pub use multi_queue::MultiQueueScheduler;
pub use observe::{ObserverSlot, SchedObserver, SharedObserver, StartKind};
pub use profile::Profile;
pub use scheduler::{Algorithm, Scheduler};
pub use types::{Request, RequestId};
