//! Option (iii) of Section 2: multiple batch queues on a single resource.
//!
//! "Different queues typically correspond to higher service unit costs.
//! The question is then whether one should wait possibly a long time for
//! a cheaper resource allocation." This module provides the substrate: a
//! scheduler managing several priority-ordered queues over one shared
//! node pool. Scheduling follows the EASY discipline applied to the
//! priority-then-FIFO order of all queued requests: the globally
//! highest-ranked request holds the backfilling reservation.
//!
//! A user exercising option (iii) submits one copy per queue and cancels
//! the losers when one starts — driven by `rbr-grid`'s multi-queue
//! experiment.

use std::collections::VecDeque;

use rbr_simcore::SimTime;

use crate::core::ClusterCore;
use crate::observe::{ObserverSlot, StartKind};
use crate::types::{Request, RequestId};

/// Identifier of a queue within the scheduler; lower values are served
/// first ("premium" queues).
pub type QueueId = usize;

/// A multi-queue batch scheduler over one node pool.
#[derive(Clone, Debug)]
pub struct MultiQueueScheduler {
    core: ClusterCore,
    queues: Vec<VecDeque<Request>>,
    backfills: u64,
    observer: ObserverSlot,
}

impl MultiQueueScheduler {
    /// An idle cluster of `nodes` nodes with `n_queues` priority-ordered
    /// queues (queue 0 is served first).
    ///
    /// # Panics
    /// Panics unless there is at least one queue.
    pub fn new(nodes: u32, n_queues: usize) -> Self {
        assert!(n_queues >= 1, "need at least one queue");
        MultiQueueScheduler {
            core: ClusterCore::new(nodes),
            queues: vec![VecDeque::new(); n_queues],
            backfills: 0,
            observer: ObserverSlot::empty(),
        }
    }

    /// Attaches an observer slot delivering this scheduler's hook events
    /// (see [`crate::observe`]).
    pub fn attach_observer(&mut self, slot: ObserverSlot) {
        slot.with(|s, o| o.on_attach(s, self.core.total(), "MULTI-QUEUE"));
        self.observer = slot;
    }

    /// Number of requests started out of priority order (phase-2 starts).
    pub fn backfills(&self) -> u64 {
        self.backfills
    }

    /// Machine size.
    pub fn total_nodes(&self) -> u32 {
        self.core.total()
    }

    /// Currently idle nodes.
    pub fn free_nodes(&self) -> u32 {
        self.core.free()
    }

    /// Number of queues.
    pub fn n_queues(&self) -> usize {
        self.queues.len()
    }

    /// Length of one queue.
    ///
    /// # Panics
    /// Panics if the queue does not exist.
    pub fn queue_len(&self, queue: QueueId) -> usize {
        self.queues[queue].len()
    }

    /// Total queued requests across queues.
    pub fn total_queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Whether the request is queued (in any queue).
    pub fn is_queued(&self, id: RequestId) -> bool {
        self.queues.iter().any(|q| q.iter().any(|r| r.id == id))
    }

    /// Whether the request is running.
    pub fn is_running(&self, id: RequestId) -> bool {
        self.core.is_running(id)
    }

    /// Submits `req` to `queue`.
    ///
    /// # Panics
    /// Panics if the queue does not exist or the request cannot ever fit
    /// the machine.
    pub fn submit(
        &mut self,
        now: SimTime,
        queue: QueueId,
        req: Request,
        starts: &mut Vec<RequestId>,
    ) {
        assert!(queue < self.queues.len(), "queue {queue} does not exist");
        assert!(
            req.nodes <= self.core.total(),
            "request {} cannot ever run: {} nodes > machine size {}",
            req.id,
            req.nodes,
            self.core.total()
        );
        self.observer.with(|s, o| o.on_submit(s, now, queue, &req));
        self.queues[queue].push_back(req);
        self.try_schedule(now, starts);
    }

    /// Cancels a queued request (searched across all queues). Returns
    /// whether it was found and removed.
    pub fn cancel(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) -> bool {
        for q in &mut self.queues {
            if let Some(pos) = q.iter().position(|r| r.id == id) {
                q.remove(pos);
                self.observer.with(|s, o| o.on_cancel(s, now, id));
                self.try_schedule(now, starts);
                return true;
            }
        }
        false
    }

    /// Reports the completion of a running request.
    pub fn complete(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) {
        let rec = self.core.remove(id);
        self.observer
            .with(|s, o| o.on_finish(s, now, id, rec.request.nodes));
        self.try_schedule(now, starts);
    }

    /// Revokes a same-instant start (the job began elsewhere).
    pub fn abort(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) {
        let rec = self.core.remove(id);
        self.observer
            .with(|s, o| o.on_finish(s, now, id, rec.request.nodes));
        self.try_schedule(now, starts);
    }

    /// The EASY pass over the priority-then-FIFO global order: start the
    /// ranked head while it fits, then backfill under its shadow.
    fn try_schedule(&mut self, now: SimTime, starts: &mut Vec<RequestId>) {
        // Phase 1: strict priority-order starts.
        loop {
            let Some((queue, _)) = self.ranked_head() else {
                return;
            };
            let head = *self.queues[queue].front().expect("head exists");
            if !self.core.fits_now(&head) {
                break;
            }
            self.queues[queue].pop_front();
            self.core.start(now, head);
            self.observer
                .with(|s, o| o.on_start(s, now, &head, StartKind::FifoHead));
            starts.push(head.id);
        }
        if self.core.free() == 0 {
            return;
        }

        // Phase 2: backfill behind the blocked global head.
        let (head_queue, _) = self.ranked_head().expect("head checked above");
        let head = *self.queues[head_queue].front().expect("head exists");
        let (shadow, mut extra) = self.core.shadow(&head);
        self.observer
            .with(|s, o| o.on_shadow(s, now, &head, shadow, extra));
        for queue in 0..self.queues.len() {
            let mut i = if queue == head_queue { 1 } else { 0 };
            while i < self.queues[queue].len() {
                if self.core.free() == 0 {
                    return;
                }
                let cand = self.queues[queue][i];
                if cand.nodes <= self.core.free() {
                    let ends_by_shadow = cand.end_if_started(now) <= shadow;
                    if ends_by_shadow || cand.nodes <= extra {
                        if !ends_by_shadow {
                            extra -= cand.nodes;
                        }
                        self.queues[queue].remove(i).expect("index in bounds");
                        self.core.start(now, cand);
                        self.backfills += 1;
                        self.observer
                            .with(|s, o| o.on_start(s, now, &cand, StartKind::Backfill));
                        starts.push(cand.id);
                        continue;
                    }
                }
                i += 1;
            }
        }
    }

    /// The queue holding the globally highest-ranked request, if any.
    fn ranked_head(&self) -> Option<(QueueId, RequestId)> {
        self.queues
            .iter()
            .enumerate()
            .find_map(|(q, queue)| queue.front().map(|r| (q, r.id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::Duration;

    fn req(id: u64, nodes: u32, est: f64) -> Request {
        Request::new(
            RequestId(id),
            nodes,
            Duration::from_secs(est),
            SimTime::ZERO,
        )
    }
    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn premium_queue_is_served_first() {
        let mut s = MultiQueueScheduler::new(10, 2);
        let mut starts = Vec::new();
        s.submit(t(0.0), 0, req(1, 10, 100.0), &mut starts); // runs
        s.submit(t(0.0), 1, req(2, 10, 10.0), &mut starts); // standard, first in line by time
        s.submit(t(0.0), 0, req(3, 10, 10.0), &mut starts); // premium, arrived later
        assert_eq!(starts, vec![RequestId(1)]);
        starts.clear();
        s.complete(t(100.0), RequestId(1), &mut starts);
        // The premium request jumps the standard one despite arriving later.
        assert_eq!(starts, vec![RequestId(3)]);
        starts.clear();
        s.complete(t(110.0), RequestId(3), &mut starts);
        assert_eq!(starts, vec![RequestId(2)]);
    }

    #[test]
    fn backfill_works_across_queues() {
        let mut s = MultiQueueScheduler::new(10, 2);
        let mut starts = Vec::new();
        s.submit(t(0.0), 0, req(1, 8, 100.0), &mut starts); // runs
        s.submit(t(0.0), 0, req(2, 8, 50.0), &mut starts); // premium head, blocked
                                                           // A standard short narrow job backfills under the premium head's
                                                           // shadow.
        s.submit(t(0.0), 1, req(3, 2, 50.0), &mut starts);
        assert_eq!(starts, vec![RequestId(1), RequestId(3)]);
    }

    #[test]
    fn cross_queue_copies_with_cancellation() {
        // Option (iii): the same job in both queues; when the premium
        // copy starts, the standard copy is cancelled.
        let mut s = MultiQueueScheduler::new(4, 2);
        let mut starts = Vec::new();
        s.submit(t(0.0), 0, req(1, 4, 100.0), &mut starts); // occupies machine
        s.submit(t(0.0), 0, req(10, 4, 50.0), &mut starts); // premium copy
        s.submit(t(0.0), 1, req(11, 4, 50.0), &mut starts); // standard copy
        starts.clear();
        s.complete(t(100.0), RequestId(1), &mut starts);
        assert_eq!(starts, vec![RequestId(10)], "premium copy wins");
        assert!(s.cancel(t(100.0), RequestId(11), &mut starts));
        assert_eq!(s.total_queued(), 0);
    }

    #[test]
    fn single_queue_behaves_like_easy() {
        let mut s = MultiQueueScheduler::new(10, 1);
        let mut starts = Vec::new();
        s.submit(t(0.0), 0, req(1, 8, 100.0), &mut starts);
        s.submit(t(0.0), 0, req(2, 8, 50.0), &mut starts);
        s.submit(t(0.0), 0, req(3, 2, 100.0), &mut starts); // extra-nodes backfill
        assert_eq!(starts, vec![RequestId(1), RequestId(3)]);
    }

    #[test]
    fn free_node_accounting_across_queues() {
        let mut s = MultiQueueScheduler::new(16, 3);
        let mut starts = Vec::new();
        for (i, q) in [(1u64, 0usize), (2, 1), (3, 2), (4, 1)] {
            s.submit(t(0.0), q, req(i, 4, 60.0), &mut starts);
        }
        assert_eq!(starts.len(), 4);
        assert_eq!(s.free_nodes(), 0);
        starts.clear();
        s.complete(t(60.0), RequestId(1), &mut starts);
        assert_eq!(s.free_nodes(), 4);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn unknown_queue_rejected() {
        let mut s = MultiQueueScheduler::new(4, 2);
        let mut starts = Vec::new();
        s.submit(t(0.0), 5, req(1, 1, 10.0), &mut starts);
    }
}
