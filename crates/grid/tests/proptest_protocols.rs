//! Property tests for the protocol-trait simulation core: for arbitrary
//! seeds and redundancy fractions, every protocol driven by the shared
//! [`SimDriver`](rbr_grid::SimDriver) must start each job exactly once,
//! never cancel a committed winner, produce non-negative waits, and waste
//! zero node-seconds under perfect middleware.

use proptest::prelude::*;
use rbr_grid::dual_queue::{self, DualQueueConfig};
use rbr_grid::moldable::{self, MoldableConfig, ShapePolicy};
use rbr_grid::{GridConfig, GridSim, RunResult, Scheme};
use rbr_simcore::{Duration, SeedSequence};

/// The invariants every protocol inherits from the shared driver.
fn check_invariants(run: &RunResult) {
    let n_targets = run.max_queue_len.len();
    for (i, r) in run.records.iter().enumerate() {
        // Every job starts exactly once: one record per job, in job
        // order, each naming a valid winning target.
        assert_eq!(r.job, i, "records must be one per job, in job order");
        assert!(
            r.ran_on < n_targets,
            "job {i} ran on unknown target {}",
            r.ran_on
        );
        // Non-negative wait, and the committed winner ran to completion.
        assert!(r.start >= r.arrival, "job {i} started before its arrival");
        assert_eq!(
            r.completion,
            r.start + r.runtime,
            "job {i} completion drifted"
        );
        assert!(r.copies >= 1, "job {i} submitted no copies");
        // copies can stay at 1 for a redundant job whose first copy
        // started instantly (remaining plans are skipped), but more than
        // one submitted copy always means the job raced redundantly.
        assert!(r.copies == 1 || r.redundant, "job {i} redundancy flag");
        assert!(
            run.makespan >= r.completion,
            "makespan before job {i} finished"
        );
    }
    // Perfect middleware: the race never wastes node-time.
    assert_eq!(
        run.zombie_starts, 0,
        "zombie start under perfect middleware"
    );
    assert_eq!(run.wasted_node_secs, 0.0, "waste under perfect middleware");
    // A committed winner is never cancelled: every submitted copy is
    // accounted as exactly one of winner / cancelled loser / same-instant
    // abort, so winners and cancellations are disjoint.
    assert_eq!(
        run.submits,
        run.records.len() as u64 + run.cancels + run.aborts,
        "copy accounting must partition submits into winners, cancels, aborts"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn multicluster_protocol_invariants(seed in 0u64..1_000_000, frac in 0.0f64..=1.0) {
        let mut cfg = GridConfig::homogeneous(3, Scheme::All);
        cfg.redundant_fraction = frac;
        cfg.window = Duration::from_secs(900.0);
        let run = GridSim::execute(cfg, SeedSequence::new(seed));
        prop_assert!(!run.records.is_empty());
        check_invariants(&run);
    }

    #[test]
    fn dual_queue_protocol_invariants(seed in 0u64..1_000_000, frac in 0.0f64..=1.0) {
        let mut cfg = DualQueueConfig::new(frac);
        cfg.window = Duration::from_secs(900.0);
        let result = dual_queue::run(&cfg, SeedSequence::new(seed));
        prop_assert!(!result.run.records.is_empty());
        check_invariants(&result.run);
    }

    #[test]
    fn moldable_protocol_invariants(seed in 0u64..1_000_000, shape in 0usize..3) {
        let policy = if shape == 0 { ShapePolicy::AllShapes } else { ShapePolicy::Fixed(shape - 1) };
        let mut cfg = MoldableConfig::new(policy);
        cfg.window = Duration::from_secs(900.0);
        let result = moldable::run(&cfg, SeedSequence::new(seed));
        prop_assert!(!result.run.records.is_empty());
        check_invariants(&result.run);
    }
}
