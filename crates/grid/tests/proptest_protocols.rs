//! Property tests for the protocol-trait simulation core: for arbitrary
//! seeds and redundancy fractions, every protocol driven by the shared
//! [`SimDriver`](rbr_grid::SimDriver) must start each job exactly once,
//! never cancel a committed winner, produce non-negative waits, and waste
//! zero node-seconds under perfect middleware.

use proptest::prelude::*;
use rbr_grid::dual_queue::{self, DualQueueConfig};
use rbr_grid::moldable::{self, MoldableConfig, ShapePolicy};
use rbr_grid::redundancy::{self, CopyModel, RedundancyConfig};
use rbr_grid::{CancelMode, GridConfig, GridSim, RunResult, Scheme};
use rbr_simcore::{Duration, SeedSequence};

/// The invariants every protocol inherits from the shared driver.
fn check_invariants(run: &RunResult) {
    let n_targets = run.max_queue_len.len();
    for (i, r) in run.records.iter().enumerate() {
        // Every job starts exactly once: one record per job, in job
        // order, each naming a valid winning target.
        assert_eq!(r.job, i, "records must be one per job, in job order");
        assert!(
            r.ran_on < n_targets,
            "job {i} ran on unknown target {}",
            r.ran_on
        );
        // Non-negative wait, and the committed winner ran to completion.
        assert!(r.start >= r.arrival, "job {i} started before its arrival");
        assert_eq!(
            r.completion,
            r.start + r.runtime,
            "job {i} completion drifted"
        );
        assert!(r.copies >= 1, "job {i} submitted no copies");
        // copies can stay at 1 for a redundant job whose first copy
        // started instantly (remaining plans are skipped), but more than
        // one submitted copy always means the job raced redundantly.
        assert!(r.copies == 1 || r.redundant, "job {i} redundancy flag");
        assert!(
            run.makespan >= r.completion,
            "makespan before job {i} finished"
        );
    }
    // Perfect middleware: the race never wastes node-time.
    assert_eq!(
        run.zombie_starts, 0,
        "zombie start under perfect middleware"
    );
    assert_eq!(run.wasted_node_secs, 0.0, "waste under perfect middleware");
    // A committed winner is never cancelled: every submitted copy is
    // accounted as exactly one of winner / cancelled loser / same-instant
    // abort, so winners and cancellations are disjoint.
    assert_eq!(
        run.submits,
        run.records.len() as u64 + run.cancels + run.aborts,
        "copy accounting must partition submits into winners, cancels, aborts"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn multicluster_protocol_invariants(seed in 0u64..1_000_000, frac in 0.0f64..=1.0) {
        let mut cfg = GridConfig::homogeneous(3, Scheme::All);
        cfg.redundant_fraction = frac;
        cfg.window = Duration::from_secs(900.0);
        let run = GridSim::execute(cfg, SeedSequence::new(seed));
        prop_assert!(!run.records.is_empty());
        check_invariants(&run);
    }

    #[test]
    fn dual_queue_protocol_invariants(seed in 0u64..1_000_000, frac in 0.0f64..=1.0) {
        let mut cfg = DualQueueConfig::new(frac);
        cfg.window = Duration::from_secs(900.0);
        let result = dual_queue::run(&cfg, SeedSequence::new(seed));
        prop_assert!(!result.run.records.is_empty());
        check_invariants(&result.run);
    }

    #[test]
    fn moldable_protocol_invariants(seed in 0u64..1_000_000, shape in 0usize..3) {
        let policy = if shape == 0 { ShapePolicy::AllShapes } else { ShapePolicy::Fixed(shape - 1) };
        let mut cfg = MoldableConfig::new(policy);
        cfg.window = Duration::from_secs(900.0);
        let result = moldable::run(&cfg, SeedSequence::new(seed));
        prop_assert!(!result.run.records.is_empty());
        check_invariants(&result.run);
    }

    /// Cancel-on-start redundancy-d inherits the full driver contract:
    /// exactly one copy does useful work, and the start race never
    /// leaves zombies or waste.
    #[test]
    fn redundancy_on_start_invariants(
        seed in 0u64..1_000_000,
        d in 1usize..=3,
        load in 0.3f64..=1.2,
    ) {
        let mut cfg = redundancy_cfg(d, load);
        cfg.cancel = CancelMode::OnStart;
        let run = redundancy::run(&cfg, SeedSequence::new(seed));
        prop_assert!(!run.records.is_empty());
        check_invariants(&run);
    }

    /// The completion race relaxes exactly one clause of the contract:
    /// started losers burn node-time until the winner finishes, so waste
    /// may be positive — but every other invariant holds, every copy is
    /// dispatched, and still exactly one copy completes useful work per
    /// job.
    #[test]
    fn redundancy_on_completion_invariants(
        seed in 0u64..1_000_000,
        d in 1usize..=3,
        load in 0.3f64..=1.2,
        model in 0usize..3,
    ) {
        let mut cfg = redundancy_cfg(d, load);
        cfg.copies = match model {
            0 => CopyModel::Iid,
            1 => CopyModel::Identical,
            _ => CopyModel::Correlated { rho: 0.5 },
        };
        let run = redundancy::run(&cfg, SeedSequence::new(seed));
        prop_assert!(!run.records.is_empty());
        let n_targets = run.max_queue_len.len();
        for (i, r) in run.records.iter().enumerate() {
            prop_assert_eq!(r.job, i);
            prop_assert!(r.ran_on < n_targets);
            prop_assert!(r.start >= r.arrival);
            prop_assert_eq!(r.completion, r.start + r.runtime);
            // Every copy is dispatched up front in the completion race.
            prop_assert_eq!(r.copies as usize, d);
            prop_assert!(r.copies == 1 || r.redundant);
            prop_assert!(run.makespan >= r.completion);
        }
        prop_assert_eq!(run.zombie_starts, 0, "perfect middleware");
        prop_assert!(run.wasted_node_secs >= 0.0);
        if d == 1 {
            prop_assert_eq!(run.wasted_node_secs, 0.0, "no loser to burn");
        }
        prop_assert_eq!(
            run.submits,
            run.records.len() as u64 + run.cancels + run.aborts
        );
    }

    /// `d = 1` degenerates to the single-submit baseline bitwise, under
    /// either cancel mode: same records, same counters.
    #[test]
    fn redundancy_d1_is_single_submit(seed in 0u64..1_000_000, comp in 0usize..2) {
        let mut cfg = redundancy_cfg(1, 0.8);
        cfg.cancel = if comp == 1 { CancelMode::OnCompletion } else { CancelMode::OnStart };
        let a = redundancy::run(&cfg, SeedSequence::new(seed));
        let b = redundancy::run_single(&cfg, SeedSequence::new(seed));
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(a.submits, b.submits);
        prop_assert_eq!(a.cancels, b.cancels);
        prop_assert_eq!(a.aborts, b.aborts);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(&a.max_queue_len, &b.max_queue_len);
        prop_assert_eq!(a.wasted_node_secs.to_bits(), b.wasted_node_secs.to_bits());
    }

    /// The survey's mechanism, observable in the waste ledger: identical
    /// copies duplicate full work while i.i.d. copies hedge, so at equal
    /// seeds the identical completion race wastes at least as much
    /// node-time in aggregate (summed over a few paired replications to
    /// keep the claim about the mechanism, not one draw).
    #[test]
    fn identical_copies_waste_at_least_iid(seed in 0u64..1_000_000) {
        let mut ident_total = 0.0;
        let mut iid_total = 0.0;
        for rep in 0..4u64 {
            let child = SeedSequence::new(seed).child(rep);
            let mut cfg = redundancy_cfg(2, 0.7);
            cfg.copies = CopyModel::Identical;
            ident_total += redundancy::run(&cfg, child).wasted_node_secs;
            cfg.copies = CopyModel::Iid;
            iid_total += redundancy::run(&cfg, child).wasted_node_secs;
        }
        prop_assert!(
            ident_total >= iid_total,
            "identical copies must waste at least as much as iid: {} < {}",
            ident_total,
            iid_total
        );
    }
}

/// A small redundancy-d workload: 3 servers, 30 s mean service, a
/// 20-minute window, completion-cancelled i.i.d. copies unless the test
/// overrides an axis.
fn redundancy_cfg(d: usize, load: f64) -> RedundancyConfig {
    let mut cfg = RedundancyConfig::new(3, d).with_load(load);
    cfg.service_mean = 30.0;
    cfg.window = Duration::from_secs(1_200.0);
    cfg
}
