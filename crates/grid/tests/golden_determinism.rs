//! Golden determinism suite.
//!
//! The faultless multi-cluster path carries the paper's headline numbers,
//! so its output is locked down bit-for-bit: the snapshots under
//! `tests/golden/` were recorded from the pre-refactor simulator and every
//! subsequent rewrite of the event loop must reproduce them exactly for
//! seeds 0–3. Regenerate (only when a change is *supposed* to alter
//! results, with reviewer sign-off) via:
//!
//! ```text
//! RBR_BLESS=1 cargo test -p rbr-grid --test golden_determinism
//! ```
//!
//! The digest serializes integer microseconds and exact counters only —
//! no floating-point formatting is involved, so a digest match is a
//! bit-identical run.

use std::fs;
use std::path::PathBuf;

use rbr_grid::{GridConfig, GridSim, RunResult, Scheme};
use rbr_sched::Algorithm;
use rbr_simcore::{Duration, SeedSequence};

/// Exact textual form of a run: one line per job record plus a footer of
/// run-level counters. Times are raw microseconds.
fn digest(result: &RunResult) -> String {
    let mut out = String::new();
    for r in &result.records {
        let predicted = match r.predicted_wait {
            Some(d) => d.as_micros().to_string(),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "job={} home={} ran_on={} nodes={} arrival={} start={} completion={} \
             runtime={} redundant={} copies={} predicted={}\n",
            r.job,
            r.home,
            r.ran_on,
            r.nodes,
            r.arrival.as_micros(),
            r.start.as_micros(),
            r.completion.as_micros(),
            r.runtime.as_micros(),
            r.redundant,
            r.copies,
            predicted,
        ));
    }
    out.push_str(&format!(
        "submits={} cancels={} aborts={} makespan={} events={} backfills={} \
         max_queue_len={:?} wasted_bits={}\n",
        result.submits,
        result.cancels,
        result.aborts,
        result.makespan.as_micros(),
        result.events,
        result.backfills,
        result.max_queue_len,
        result.wasted_node_secs.to_bits(),
    ));
    out
}

/// A 3-cluster ALL-scheme run under EASY: exercises redundancy, sibling
/// cancellation, and the same-instant abort path.
fn all3() -> GridConfig {
    let mut cfg = GridConfig::homogeneous(3, Scheme::All);
    cfg.window = Duration::from_secs(1_800.0);
    cfg
}

/// A 2-cluster R2 run under CBF with prediction collection: exercises the
/// reservation-based predictor and the `predicted_wait` plumbing.
fn cbf2() -> GridConfig {
    let mut cfg = GridConfig::homogeneous(2, Scheme::R(2));
    cfg.algorithm = Algorithm::Cbf;
    cfg.collect_predictions = true;
    cfg.window = Duration::from_secs(900.0);
    cfg
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden_runs(label: &str, run_seed: impl Fn(u64) -> RunResult) {
    for seed in 0u64..4 {
        let run = run_seed(seed);
        let got = digest(&run);
        let path = golden_path(&format!("{label}_s{seed}.txt"));
        if std::env::var_os("RBR_BLESS").is_some() {
            fs::create_dir_all(path.parent().expect("golden dir has a parent"))
                .expect("create golden dir");
            fs::write(&path, &got).expect("write golden");
            continue;
        }
        let want = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        assert_eq!(
            got, want,
            "faultless run diverged from recorded golden ({label}, seed {seed})"
        );
    }
}

fn check_golden(label: &str, make: fn() -> GridConfig) {
    check_golden_runs(label, |seed| {
        GridSim::execute(make(), SeedSequence::new(seed))
    });
}

#[test]
fn faultless_all_scheme_matches_pre_refactor_golden() {
    check_golden("all3", all3);
}

#[test]
fn faultless_cbf_predictions_match_pre_refactor_golden() {
    check_golden("cbf2", cbf2);
}

/// The dual-queue protocol locked down the same way: two queues over one
/// pool, short/long split at 0.4 of the estimate distribution.
#[test]
fn dual_queue_matches_recorded_golden() {
    use rbr_grid::dual_queue::{self, DualQueueConfig};
    let mut cfg = DualQueueConfig::new(0.4);
    cfg.window = Duration::from_secs(1_200.0);
    check_golden_runs("dual_queue", |seed| {
        dual_queue::run(&cfg, SeedSequence::new(seed)).run
    });
}

/// Moldable shape racing locked down for both policies: the fixed-shape
/// baseline and the all-shapes race.
#[test]
fn moldable_matches_recorded_golden() {
    use rbr_grid::moldable::{self, MoldableConfig, ShapePolicy};
    for (label, policy) in [
        ("moldable_fixed", ShapePolicy::Fixed(0)),
        ("moldable_race", ShapePolicy::AllShapes),
    ] {
        let mut cfg = MoldableConfig::new(policy);
        cfg.window = Duration::from_secs(1_200.0);
        check_golden_runs(label, |seed| {
            moldable::run(&cfg, SeedSequence::new(seed)).run
        });
    }
}

/// The redundancy-d family locked down across its axes: the single-submit
/// baseline, the cancel-on-start race, and the cancel-on-completion race
/// under i.i.d. and identical copies (the completion race exercises the
/// running-loser kill and waste accounting, so `wasted_bits` is part of
/// the lock).
#[test]
fn redundancy_matches_recorded_golden() {
    use rbr_grid::redundancy::{self, CopyModel, RedundancyConfig};
    use rbr_grid::CancelMode;
    let base = || {
        let mut cfg = RedundancyConfig::new(3, 2).with_load(0.8);
        cfg.service_mean = 30.0;
        cfg.window = Duration::from_secs(1_200.0);
        cfg
    };
    check_golden_runs("redundancy_single", |seed| {
        redundancy::run_single(&base(), SeedSequence::new(seed))
    });
    check_golden_runs("redundancy_start", |seed| {
        let mut cfg = base();
        cfg.cancel = CancelMode::OnStart;
        redundancy::run(&cfg, SeedSequence::new(seed))
    });
    check_golden_runs("redundancy_comp", |seed| {
        redundancy::run(&base(), SeedSequence::new(seed))
    });
    check_golden_runs("redundancy_comp_ident", |seed| {
        let mut cfg = base();
        cfg.copies = CopyModel::Identical;
        redundancy::run(&cfg, SeedSequence::new(seed))
    });
}

/// The observability contract, end-to-end: with the metrics registry
/// enabled AND a trace sink attached, every golden digest for seeds
/// 0–3 must still match byte-for-byte. Tracing and metrics write only
/// to side channels (registry atomics, the trace file) — they never
/// touch the rng, the event order, or the result — so turning them on
/// cannot move a single bit of the locked-down output.
#[test]
fn goldens_hold_with_observability_enabled() {
    let trace_path =
        std::env::temp_dir().join(format!("rbr-golden-obs-trace-{}.jsonl", std::process::id()));
    rbr_obs::metrics::set_enabled(true);
    rbr_obs::trace::start_file(&trace_path).expect("attach trace sink");
    check_golden("all3", all3);
    check_golden("cbf2", cbf2);
    rbr_obs::trace::stop().expect("detach trace sink");
    rbr_obs::metrics::set_enabled(false);
    // The side channels must actually have been exercised.
    let trace = fs::read_to_string(&trace_path).expect("trace file written");
    assert!(
        trace.lines().any(|l| l.contains("\"scope\":\"grid.run\"")),
        "traced runs must emit grid.run phase records"
    );
    let snap = rbr_obs::metrics::snapshot();
    assert!(
        snap.entries
            .iter()
            .any(|(name, _)| name == "sim.queue.pushes"),
        "metered runs must publish sim queue stats"
    );
    let _ = fs::remove_file(&trace_path);
}

/// Same seed twice → identical digest, for every seed in a small sweep.
#[test]
fn multicluster_same_seed_is_bit_identical() {
    for seed in [0u64, 1, 2, 3, 41] {
        let a = GridSim::execute(all3(), SeedSequence::new(seed));
        let b = GridSim::execute(all3(), SeedSequence::new(seed));
        assert_eq!(digest(&a), digest(&b), "seed {seed}");
    }
}

/// The dual-queue protocol runs on the same [`rbr_grid::SimDriver`] core,
/// so it inherits the same determinism contract: same seed → identical
/// digest, including the unified counters.
#[test]
fn dual_queue_same_seed_is_bit_identical() {
    use rbr_grid::dual_queue::{self, DualQueueConfig};
    let mut cfg = DualQueueConfig::new(0.4);
    cfg.window = Duration::from_secs(1_200.0);
    for seed in [0u64, 1, 2, 3] {
        let a = dual_queue::run(&cfg, SeedSequence::new(seed));
        let b = dual_queue::run(&cfg, SeedSequence::new(seed));
        assert_eq!(digest(&a.run), digest(&b.run), "seed {seed}");
    }
}

/// The pending-event set has two implementations (the calendar queue the
/// simulator runs on, and the reference binary heap); a whole grid
/// experiment must produce a byte-identical report on either. This is the
/// end-to-end check that the calendar queue's pop order — including FIFO
/// ties, which the race/cancel/abort protocol is exquisitely sensitive
/// to — matches the heap's exactly.
#[test]
fn both_queue_kinds_produce_identical_reports() {
    use rbr_simcore::{with_queue_kind, QueueKind};
    for (label, make) in [("all3", all3 as fn() -> GridConfig), ("cbf2", cbf2)] {
        for seed in 0u64..4 {
            let cal = with_queue_kind(QueueKind::Calendar, || {
                GridSim::execute(make(), SeedSequence::new(seed))
            });
            let heap = with_queue_kind(QueueKind::Heap, || {
                GridSim::execute(make(), SeedSequence::new(seed))
            });
            assert_eq!(
                digest(&cal),
                digest(&heap),
                "queue implementations diverged ({label}, seed {seed})"
            );
        }
    }
}

/// Moldable shape racing draws shape order from the driver rng; same seed
/// → identical digest for both the fixed-shape and all-shapes policies.
#[test]
fn moldable_same_seed_is_bit_identical() {
    use rbr_grid::moldable::{self, MoldableConfig, ShapePolicy};
    for policy in [ShapePolicy::Fixed(0), ShapePolicy::AllShapes] {
        let mut cfg = MoldableConfig::new(policy);
        cfg.window = Duration::from_secs(1_200.0);
        for seed in [0u64, 1, 2, 3] {
            let a = moldable::run(&cfg, SeedSequence::new(seed));
            let b = moldable::run(&cfg, SeedSequence::new(seed));
            assert_eq!(digest(&a.run), digest(&b.run), "seed {seed} {policy:?}");
        }
    }
}
