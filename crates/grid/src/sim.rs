//! The multi-cluster discrete-event simulation.
//!
//! Each cluster runs its own batch scheduler and receives its own job
//! stream. A redundant job submits copies to its home cluster plus
//! randomly selected remotes; the instant any copy is granted nodes, the
//! job starts there and every other copy is cancelled (the zero-latency
//! callback). If two clusters grant copies at the same simulated instant,
//! the engine commits them in deterministic event order and revokes the
//! losers (`Scheduler::abort`), which is exactly what an instantaneous
//! cancellation callback would do.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rbr_sched::{Request, RequestId, Scheduler};
use rbr_simcore::{unit, Duration, Engine, SeedSequence, SimTime};
use rbr_workload::{JobSpec, LublinModel};

use crate::config::GridConfig;
use crate::record::{JobRecord, RunResult};

/// Engine events.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// A job arrives (index into the job table).
    Submit(usize),
    /// A running request finishes.
    Complete {
        /// Cluster it ran on.
        cluster: usize,
        /// Dense request index.
        req: u64,
    },
}

/// Which job a request belongs to.
#[derive(Clone, Copy, Debug)]
struct ReqInfo {
    job: usize,
}

/// Mutable per-job state during the run.
#[derive(Clone, Debug, Default)]
struct JobState {
    started: Option<(usize, SimTime)>,
    requests: Vec<(usize, RequestId)>,
    redundant: bool,
    predicted_wait: Option<Duration>,
    done: bool,
}

/// The simulation: build with [`GridSim::new`], execute with
/// [`GridSim::run`], or do both with [`GridSim::execute`].
pub struct GridSim {
    config: GridConfig,
    engine: Engine<Event>,
    scheds: Vec<Box<dyn Scheduler>>,
    jobs: Vec<(JobSpec, usize)>,
    states: Vec<JobState>,
    reqs: Vec<ReqInfo>,
    rng: StdRng,
    result: RunResult,
    records: Vec<Option<JobRecord>>,
    scratch: Vec<RequestId>,
    worklist: VecDeque<(usize, RequestId)>,
}

impl GridSim {
    /// Builds a simulation: generates every cluster's job stream from the
    /// seed hierarchy and schedules the submission events.
    ///
    /// Stream `seed.child(i)` drives cluster `i`'s workload;
    /// `seed.child(n_clusters)` drives redundancy coin-flips and target
    /// selection. Identical seeds therefore give identical job streams
    /// across different schemes — the paired-comparison design of the
    /// paper.
    pub fn new(config: GridConfig, seed: SeedSequence) -> Self {
        config.validate();
        let mut jobs: Vec<(JobSpec, usize)> = Vec::new();
        for (i, cluster) in config.clusters.iter().enumerate() {
            let model = LublinModel::new(cluster.workload);
            let mut rng = seed.child(i as u64).rng();
            for spec in model.generate(&mut rng, config.window, &config.estimates) {
                jobs.push((spec, i));
            }
        }
        Self::with_jobs(config, jobs, seed)
    }

    /// Builds a simulation over an explicit job table — the trace-replay
    /// path ("we conducted some simulations using real-world traces",
    /// §3.1.1). Each entry is a job spec plus its home cluster index;
    /// `config.window` and per-cluster workload models are ignored,
    /// everything else (scheme, selection, algorithm…) applies as usual.
    ///
    /// # Panics
    /// Panics if a home cluster index is out of range or a job requests
    /// more nodes than its home cluster has.
    pub fn with_jobs(
        config: GridConfig,
        jobs: Vec<(JobSpec, usize)>,
        seed: SeedSequence,
    ) -> Self {
        config.validate();
        let n = config.n_clusters();
        for (spec, home) in &jobs {
            assert!(*home < n, "home cluster {home} out of range");
            assert!(
                spec.nodes <= config.clusters[*home].nodes,
                "job requests {} nodes but home cluster {home} has {}",
                spec.nodes,
                config.clusters[*home].nodes
            );
        }
        let mut engine = Engine::new();
        for (j, (spec, _)) in jobs.iter().enumerate() {
            engine.schedule(spec.arrival, Event::Submit(j));
        }
        let scheds: Vec<Box<dyn Scheduler>> = config
            .clusters
            .iter()
            .map(|c| config.algorithm.build_with_cycle(c.nodes, config.cbf_cycle))
            .collect();
        let states = vec![JobState::default(); jobs.len()];
        let records = vec![None; jobs.len()];
        GridSim {
            rng: seed.child(n as u64).rng(),
            result: RunResult {
                max_queue_len: vec![0; n],
                ..Default::default()
            },
            engine,
            scheds,
            states,
            records,
            reqs: Vec::with_capacity(jobs.len() * 2),
            jobs,
            config,
            scratch: Vec::new(),
            worklist: VecDeque::new(),
        }
    }

    /// Convenience: build and run in one call.
    pub fn execute(config: GridConfig, seed: SeedSequence) -> RunResult {
        GridSim::new(config, seed).run()
    }

    /// Number of jobs in the run.
    pub fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Runs the simulation to completion and returns the results.
    ///
    /// # Panics
    /// Panics if any job fails to start or complete — that would be a
    /// scheduler bug, not a valid outcome.
    pub fn run(mut self) -> RunResult {
        while let Some((now, event)) = self.engine.pop() {
            match event {
                Event::Submit(j) => self.handle_submit(now, j),
                Event::Complete { cluster, req } => self.handle_complete(now, cluster, req),
            }
            self.result.makespan = now;
        }
        self.result.events = self.engine.processed();
        self.result.backfills = self.scheds.iter().map(|s| s.backfills()).sum();
        let records = std::mem::take(&mut self.records);
        self.result.records = records
            .into_iter()
            .enumerate()
            .map(|(j, r)| r.unwrap_or_else(|| panic!("job {j} never completed")))
            .collect();
        self.result
    }

    fn handle_submit(&mut self, now: SimTime, j: usize) {
        let (spec, home) = self.jobs[j];
        let n = self.config.n_clusters();

        // Does this job use redundancy, and where do its copies go?
        let wants_redundancy = self.config.scheme.is_redundant(n)
            && (self.config.redundant_fraction >= 1.0
                || unit(&mut self.rng) < self.config.redundant_fraction);
        let mut targets = vec![home];
        if wants_redundancy {
            let copies = self.config.scheme.copies(n);
            let eligible: Vec<usize> = (0..n)
                .filter(|&c| c != home && self.config.clusters[c].nodes >= spec.nodes)
                .collect();
            let queue_lens: Vec<usize> = self.scheds.iter().map(|s| s.queue_len()).collect();
            targets.extend(self.config.selection.choose(
                &mut self.rng,
                &eligible,
                copies - 1,
                &queue_lens,
            ));
        }
        self.states[j].redundant = targets.len() > 1;

        for c in targets {
            if self.states[j].started.is_some() {
                // The callback already fired: the remaining copies are
                // never submitted (they would be cancelled in the same
                // instant with no effect on any schedule).
                break;
            }
            let rid = RequestId(self.reqs.len() as u64);
            self.reqs.push(ReqInfo { job: j });
            let estimate = if c == home {
                spec.estimate
            } else {
                spec.estimate.scale(1.0 + self.config.remote_inflation)
            };
            let req = Request::new(rid, spec.nodes, estimate, now);
            self.result.submits += 1;
            self.scratch.clear();
            self.scheds[c].submit(now, req, &mut self.scratch);
            self.states[j].requests.push((c, rid));
            for &started in &self.scratch {
                self.worklist.push_back((c, started));
            }
            if self.config.collect_predictions {
                let wait = self.scheds[c]
                    .predicted_start(now, rid)
                    .map(|s| s.since(now))
                    .expect("request just submitted must be known");
                let best = match self.states[j].predicted_wait {
                    Some(prev) => prev.min(wait),
                    None => wait,
                };
                self.states[j].predicted_wait = Some(best);
            }
            self.note_queue(c);
            self.commit_starts(now);
        }
    }

    fn handle_complete(&mut self, now: SimTime, cluster: usize, req: u64) {
        let rid = RequestId(req);
        let j = self.reqs[req as usize].job;
        let state = &mut self.states[j];
        debug_assert_eq!(state.started.map(|(c, _)| c), Some(cluster));
        debug_assert!(!state.done, "job {j} completed twice");
        state.done = true;

        let (spec, home) = self.jobs[j];
        let (_, start) = state.started.expect("completing job must have started");
        self.records[j] = Some(JobRecord {
            job: j,
            home,
            ran_on: cluster,
            nodes: spec.nodes,
            arrival: spec.arrival,
            start,
            completion: now,
            runtime: spec.runtime,
            redundant: state.redundant,
            copies: state.requests.len() as u32,
            predicted_wait: state.predicted_wait,
        });

        self.scratch.clear();
        self.scheds[cluster].complete(now, rid, &mut self.scratch);
        let newly: Vec<RequestId> = self.scratch.drain(..).collect();
        for started in newly {
            self.worklist.push_back((cluster, started));
        }
        self.commit_starts(now);
    }

    /// Drains the start worklist: commits job starts, cancels siblings,
    /// revokes starts whose job already began elsewhere, and follows any
    /// cascade of new starts those actions release.
    fn commit_starts(&mut self, now: SimTime) {
        while let Some((c, rid)) = self.worklist.pop_front() {
            let j = self.reqs[rid.0 as usize].job;
            if self.states[j].started.is_some() {
                // Lost the same-instant race: revoke.
                self.result.aborts += 1;
                self.scratch.clear();
                self.scheds[c].abort(now, rid, &mut self.scratch);
                let newly: Vec<RequestId> = self.scratch.drain(..).collect();
                for started in newly {
                    self.worklist.push_back((c, started));
                }
                continue;
            }
            // Commit: the job starts here, now.
            self.states[j].started = Some((c, now));
            let (spec, _) = self.jobs[j];
            self.engine.schedule(
                now + spec.runtime,
                Event::Complete {
                    cluster: c,
                    req: rid.0,
                },
            );
            // The callback: cancel every sibling copy.
            let siblings = self.states[j].requests.clone();
            for (c2, rid2) in siblings {
                if rid2 == rid {
                    continue;
                }
                self.scratch.clear();
                if self.scheds[c2].cancel(now, rid2, &mut self.scratch) {
                    self.result.cancels += 1;
                }
                let newly: Vec<RequestId> = self.scratch.drain(..).collect();
                for started in newly {
                    self.worklist.push_back((c2, started));
                }
                self.note_queue(c2);
            }
        }
    }

    fn note_queue(&mut self, c: usize) {
        let len = self.scheds[c].queue_len();
        if len > self.result.max_queue_len[c] {
            self.result.max_queue_len[c] = len;
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::JobClass;
    use crate::scheme::Scheme;
    use rbr_sched::Algorithm;

    fn small_config(n: usize, scheme: Scheme) -> GridConfig {
        let mut cfg = GridConfig::homogeneous(n, scheme);
        cfg.window = Duration::from_secs(1800.0); // half an hour keeps tests fast
        cfg
    }

    #[test]
    fn all_jobs_complete_without_redundancy() {
        let cfg = small_config(2, Scheme::None);
        let result = GridSim::execute(cfg, SeedSequence::new(70));
        assert!(!result.records.is_empty());
        for r in &result.records {
            assert!(r.start >= r.arrival);
            assert_eq!(r.completion, r.start + r.runtime);
            assert_eq!(r.home, r.ran_on, "no redundancy: jobs run at home");
            assert!(!r.redundant);
            assert_eq!(r.copies, 1);
        }
        assert_eq!(result.cancels, 0);
        assert_eq!(result.submits, result.records.len() as u64);
    }

    #[test]
    fn redundant_jobs_cancel_losing_copies() {
        let cfg = small_config(4, Scheme::All);
        let result = GridSim::execute(cfg, SeedSequence::new(71));
        let redundant = result.records.iter().filter(|r| r.redundant).count();
        assert!(redundant > 0, "ALL scheme must produce redundant jobs");
        // Every copy beyond the winner is either cancelled, aborted, or
        // was never submitted (job started before later copies went out).
        assert!(result.cancels > 0);
        assert!(result.submits >= result.records.len() as u64);
        for r in &result.records {
            assert!(r.copies >= 1 && r.copies <= 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = GridSim::execute(small_config(3, Scheme::R(2)), SeedSequence::new(72));
        let b = GridSim::execute(small_config(3, Scheme::R(2)), SeedSequence::new(72));
        assert_eq!(a.records, b.records);
        assert_eq!(a.submits, b.submits);
        assert_eq!(a.cancels, b.cancels);
        assert_eq!(a.aborts, b.aborts);
    }

    #[test]
    fn different_schemes_share_job_streams() {
        let none = GridSim::execute(small_config(3, Scheme::None), SeedSequence::new(73));
        let all = GridSim::execute(small_config(3, Scheme::All), SeedSequence::new(73));
        assert_eq!(none.records.len(), all.records.len());
        for (a, b) in none.records.iter().zip(&all.records) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.home, b.home);
        }
    }

    #[test]
    fn fraction_zero_means_no_redundancy() {
        let mut cfg = small_config(3, Scheme::All);
        cfg.redundant_fraction = 0.0;
        let result = GridSim::execute(cfg, SeedSequence::new(74));
        assert!(result.records.iter().all(|r| !r.redundant));
        assert_eq!(result.cancels, 0);
    }

    #[test]
    fn fraction_splits_population() {
        let mut cfg = small_config(4, Scheme::All);
        cfg.redundant_fraction = 0.5;
        let result = GridSim::execute(cfg, SeedSequence::new(75));
        let r = result.stretch(JobClass::Redundant).n();
        let nr = result.stretch(JobClass::NonRedundant).n();
        let total = result.records.len() as f64;
        assert!(r > 0 && nr > 0);
        let frac = r as f64 / total;
        assert!((0.4..0.6).contains(&frac), "redundant fraction {frac}");
    }

    #[test]
    fn predictions_collected_when_enabled() {
        let mut cfg = small_config(2, Scheme::R(2));
        cfg.algorithm = Algorithm::Cbf;
        cfg.collect_predictions = true;
        cfg.window = Duration::from_secs(900.0);
        let result = GridSim::execute(cfg, SeedSequence::new(76));
        assert!(result
            .records
            .iter()
            .all(|r| r.predicted_wait.is_some()));
        // Jobs that started instantly predicted zero wait.
        for r in &result.records {
            if r.wait().is_zero() && r.copies == 1 {
                assert_eq!(r.predicted_wait, Some(Duration::ZERO));
            }
        }
    }

    #[test]
    fn work_is_conserved_across_schemes() {
        let none = GridSim::execute(small_config(3, Scheme::None), SeedSequence::new(77));
        let all = GridSim::execute(small_config(3, Scheme::All), SeedSequence::new(77));
        assert!((none.total_work() - all.total_work()).abs() < 1e-6);
    }

    #[test]
    fn heterogeneous_jobs_only_target_big_enough_clusters() {
        use crate::config::ClusterSpec;
        use rbr_workload::LublinConfig;
        let cfg = GridConfig {
            clusters: vec![
                ClusterSpec::new(16, LublinConfig::paper_2006().with_mean_interarrival(8.0)),
                ClusterSpec::new(128, LublinConfig::paper_2006().with_mean_interarrival(8.0)),
            ],
            window: Duration::from_secs(1800.0),
            ..GridConfig::homogeneous(2, Scheme::All)
        };
        let result = GridSim::execute(cfg, SeedSequence::new(78));
        for r in &result.records {
            if r.ran_on == 0 {
                assert!(r.nodes <= 16, "{} nodes ran on the 16-node cluster", r.nodes);
            }
            // Jobs from the big cluster wider than 16 nodes must run home.
            if r.home == 1 && r.nodes > 16 {
                assert_eq!(r.ran_on, 1);
            }
        }
    }

    #[test]
    fn every_algorithm_completes_the_run() {
        for alg in Algorithm::all() {
            let mut cfg = small_config(2, Scheme::R(2));
            cfg.algorithm = alg;
            cfg.window = Duration::from_secs(900.0);
            let result = GridSim::execute(cfg, SeedSequence::new(79));
            assert!(!result.records.is_empty(), "{alg} produced no records");
        }
    }

    #[test]
    fn stretches_are_at_least_one() {
        let result = GridSim::execute(small_config(3, Scheme::Half), SeedSequence::new(80));
        for r in &result.records {
            assert!(r.stretch() >= 1.0 - 1e-12);
        }
    }
}
