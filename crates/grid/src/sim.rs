//! The multi-cluster redundant-request protocol (options (i)/(ii) of
//! Section 2), expressed as a [`SubmissionProtocol`] over the shared
//! [`SimDriver`] event loop.
//!
//! Each cluster runs its own batch scheduler and receives its own job
//! stream. A redundant job submits copies to its home cluster plus
//! randomly selected remotes; the instant any copy is granted nodes, the
//! job starts there and every other copy is cancelled (the zero-latency
//! callback). If two clusters grant copies at the same simulated instant,
//! the engine commits them in deterministic event order and revokes the
//! losers, which is exactly what an instantaneous cancellation callback
//! would do. All of that machinery lives in [`crate::driver`]; this
//! module only decides *where copies go*: the home cluster first, then
//! remotes drawn by the configured [`SelectionPolicy`] among clusters
//! big enough for the job, with remote estimates optionally inflated by
//! the late-binding data-staging factor of §3.1.2.
//!
//! # Faulty middleware
//!
//! With a non-default [`rbr_faults::FaultSpec`] in the configuration,
//! the control traffic above flows through an unreliable middleware
//! instead ([`FaultModel`]): submissions and cancellations take time,
//! get lost (lost submissions retry with bounded exponential backoff;
//! lost cancellations are gone for good), and clusters suffer scheduled
//! outages that wipe their scheduler state. The protocol then changes in
//! the ways real placeholder scheduling degrades:
//!
//! * every copy is dispatched at arrival (no zero-latency short-circuit)
//!   and reaches its scheduler only when its submit message arrives;
//! * the cancellation callback is sent once, when the first copy starts;
//!   copies whose cancel message is lost or late keep queueing and may
//!   start anyway — **zombies** whose node-time is wasted;
//! * the first copy to *finish* completes the job (normally the winner;
//!   after an outage killed the winner, possibly a surviving zombie);
//! * outages kill running copies (partial work wasted) and evaporate
//!   queued ones; the middleware re-delivers evaporated copies — and
//!   resubmits a killed winner — at recovery.
//!
//! The faultless configuration takes exactly the original code path and
//! never touches the fault stream, so its results are bit-identical to a
//! build without fault support.

use rand::rngs::StdRng;
use rbr_faults::FaultModel;
use rbr_sched::{ClusterSet, SchedulerSet};
use rbr_simcore::{unit, SeedSequence, SimTime};
use rbr_workload::{JobSpec, LublinModel};

use crate::config::GridConfig;
use crate::driver::{CopyPlan, SimDriver, SubmissionProtocol};
use crate::record::RunResult;
use crate::scheme::Scheme;
use crate::select::{SelectionPolicy, SelectionScratch};

/// The multi-cluster placement policy: home first, then scheme-many
/// remotes drawn by the selection policy among big-enough clusters.
/// Crate-visible so [`crate::batch`] can wrap the same placement inside
/// its batched-submit protocol.
pub(crate) struct MultiCluster {
    jobs: Vec<(JobSpec, usize)>,
    cluster_nodes: Vec<u32>,
    scheme: Scheme,
    selection: SelectionPolicy,
    redundant_fraction: f64,
    remote_inflation: f64,
    // Per-placement buffers, reused across every job in the run.
    targets: Vec<usize>,
    eligible: Vec<usize>,
    queue_lens: Vec<usize>,
    select_scratch: SelectionScratch,
}

impl MultiCluster {
    /// Builds the placement policy over an explicit job table.
    pub(crate) fn new(config: &GridConfig, jobs: Vec<(JobSpec, usize)>) -> Self {
        MultiCluster {
            jobs,
            cluster_nodes: config.clusters.iter().map(|c| c.nodes).collect(),
            scheme: config.scheme,
            selection: config.selection,
            redundant_fraction: config.redundant_fraction,
            remote_inflation: config.remote_inflation,
            targets: Vec::new(),
            eligible: Vec::new(),
            queue_lens: Vec::new(),
            select_scratch: SelectionScratch::default(),
        }
    }
}

/// Generates every cluster's job stream from the seed hierarchy: stream
/// `seed.child(i)` drives cluster `i`'s workload.
pub(crate) fn generate_jobs(config: &GridConfig, seed: &SeedSequence) -> Vec<(JobSpec, usize)> {
    let mut jobs: Vec<(JobSpec, usize)> = Vec::new();
    for (i, cluster) in config.clusters.iter().enumerate() {
        let model = LublinModel::new(cluster.workload);
        let mut rng = seed.child(i as u64).rng();
        for spec in model.generate(&mut rng, config.window, &config.estimates) {
            jobs.push((spec, i));
        }
    }
    jobs
}

/// Checks an explicit job table against the platform.
///
/// # Panics
/// Panics if a home cluster index is out of range or a job requests more
/// nodes than its home cluster has.
pub(crate) fn validate_jobs(config: &GridConfig, jobs: &[(JobSpec, usize)]) {
    let n = config.n_clusters();
    for (spec, home) in jobs {
        assert!(*home < n, "home cluster {home} out of range");
        assert!(
            spec.nodes <= config.clusters[*home].nodes,
            "job requests {} nodes but home cluster {home} has {}",
            spec.nodes,
            config.clusters[*home].nodes
        );
    }
}

impl SubmissionProtocol for MultiCluster {
    fn name(&self) -> &'static str {
        "multi-cluster"
    }

    fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    fn arrival(&self, job: usize) -> SimTime {
        self.jobs[job].0.arrival
    }

    fn home(&self, job: usize) -> usize {
        self.jobs[job].1
    }

    fn place_into(
        &mut self,
        job: usize,
        _now: SimTime,
        rng: &mut StdRng,
        scheds: &dyn SchedulerSet,
        out: &mut Vec<CopyPlan>,
    ) {
        let (spec, home) = self.jobs[job];
        let n = self.cluster_nodes.len();

        // Does this job use redundancy, and where do its copies go?
        let wants_redundancy = self.scheme.is_redundant(n)
            && (self.redundant_fraction >= 1.0 || unit(rng) < self.redundant_fraction);
        self.targets.clear();
        self.targets.push(home);
        if wants_redundancy {
            let copies = self.scheme.copies(n);
            self.eligible.clear();
            self.eligible
                .extend((0..n).filter(|&c| c != home && self.cluster_nodes[c] >= spec.nodes));
            self.queue_lens.clear();
            self.queue_lens.extend((0..n).map(|c| scheds.queue_len(c)));
            self.selection.choose_into(
                rng,
                &self.eligible,
                copies - 1,
                &self.queue_lens,
                &mut self.select_scratch,
                &mut self.targets,
            );
        }
        out.extend(self.targets.iter().map(|&c| CopyPlan {
            target: c,
            nodes: spec.nodes,
            estimate: if c == home {
                spec.estimate
            } else {
                spec.estimate.scale(1.0 + self.remote_inflation)
            },
            runtime: spec.runtime,
        }));
    }
}

/// The simulation: build with [`GridSim::new`], execute with
/// [`GridSim::run`], or do both with [`GridSim::execute`].
pub struct GridSim {
    driver: SimDriver<MultiCluster>,
}

impl GridSim {
    /// Builds a simulation: generates every cluster's job stream from the
    /// seed hierarchy and schedules the submission events.
    ///
    /// Stream `seed.child(i)` drives cluster `i`'s workload;
    /// `seed.child(n_clusters)` drives redundancy coin-flips and target
    /// selection. Identical seeds therefore give identical job streams
    /// across different schemes — the paired-comparison design of the
    /// paper.
    pub fn new(config: GridConfig, seed: SeedSequence) -> Self {
        config.validate();
        let jobs = generate_jobs(&config, &seed);
        Self::with_jobs(config, jobs, seed)
    }

    /// Builds a simulation over an explicit job table — the trace-replay
    /// path ("we conducted some simulations using real-world traces",
    /// §3.1.1). Each entry is a job spec plus its home cluster index;
    /// `config.window` and per-cluster workload models are ignored,
    /// everything else (scheme, selection, algorithm…) applies as usual.
    ///
    /// # Panics
    /// Panics if a home cluster index is out of range or a job requests
    /// more nodes than its home cluster has.
    pub fn with_jobs(config: GridConfig, jobs: Vec<(JobSpec, usize)>, seed: SeedSequence) -> Self {
        config.validate();
        validate_jobs(&config, &jobs);
        let n = config.n_clusters();
        // The fault stream is child(n + 1): disjoint from the per-cluster
        // workload streams child(0..n) and the redundancy/selection
        // stream child(n), so enabling faults never perturbs either.
        let faults = if config.faults.is_disabled() {
            None
        } else {
            Some(FaultModel::new(
                config.faults.clone(),
                seed.child(n as u64 + 1),
            ))
        };
        let cluster_nodes: Vec<u32> = config.clusters.iter().map(|c| c.nodes).collect();
        let scheds = ClusterSet::new(config.algorithm, config.cbf_cycle, &cluster_nodes);
        let protocol = MultiCluster::new(&config, jobs);
        GridSim {
            driver: SimDriver::new(
                protocol,
                Box::new(scheds),
                seed.child(n as u64).rng(),
                faults,
                config.collect_predictions,
            ),
        }
    }

    /// Convenience: build and run in one call.
    pub fn execute(config: GridConfig, seed: SeedSequence) -> RunResult {
        GridSim::new(config, seed).run()
    }

    /// Number of jobs in the run.
    pub fn n_jobs(&self) -> usize {
        self.driver.protocol().n_jobs()
    }

    /// Runs the simulation to completion and returns the results.
    ///
    /// # Panics
    /// Panics if any job fails to start or complete — that would be a
    /// scheduler bug, not a valid outcome.
    pub fn run(self) -> RunResult {
        self.driver.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::JobClass;
    use rbr_sched::Algorithm;
    use rbr_simcore::Duration;

    fn small_config(n: usize, scheme: Scheme) -> GridConfig {
        let mut cfg = GridConfig::homogeneous(n, scheme);
        cfg.window = Duration::from_secs(1800.0); // half an hour keeps tests fast
        cfg
    }

    #[test]
    fn all_jobs_complete_without_redundancy() {
        let cfg = small_config(2, Scheme::None);
        let result = GridSim::execute(cfg, SeedSequence::new(70));
        assert!(!result.records.is_empty());
        for r in &result.records {
            assert!(r.start >= r.arrival);
            assert_eq!(r.completion, r.start + r.runtime);
            assert_eq!(r.home, r.ran_on, "no redundancy: jobs run at home");
            assert!(!r.redundant);
            assert_eq!(r.copies, 1);
        }
        assert_eq!(result.cancels, 0);
        assert_eq!(result.submits, result.records.len() as u64);
    }

    #[test]
    fn redundant_jobs_cancel_losing_copies() {
        let cfg = small_config(4, Scheme::All);
        let result = GridSim::execute(cfg, SeedSequence::new(71));
        let redundant = result.records.iter().filter(|r| r.redundant).count();
        assert!(redundant > 0, "ALL scheme must produce redundant jobs");
        // Every copy beyond the winner is either cancelled, aborted, or
        // was never submitted (job started before later copies went out).
        assert!(result.cancels > 0);
        assert!(result.submits >= result.records.len() as u64);
        for r in &result.records {
            assert!(r.copies >= 1 && r.copies <= 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = GridSim::execute(small_config(3, Scheme::R(2)), SeedSequence::new(72));
        let b = GridSim::execute(small_config(3, Scheme::R(2)), SeedSequence::new(72));
        assert_eq!(a.records, b.records);
        assert_eq!(a.submits, b.submits);
        assert_eq!(a.cancels, b.cancels);
        assert_eq!(a.aborts, b.aborts);
    }

    #[test]
    fn different_schemes_share_job_streams() {
        let none = GridSim::execute(small_config(3, Scheme::None), SeedSequence::new(73));
        let all = GridSim::execute(small_config(3, Scheme::All), SeedSequence::new(73));
        assert_eq!(none.records.len(), all.records.len());
        for (a, b) in none.records.iter().zip(&all.records) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.home, b.home);
        }
    }

    #[test]
    fn fraction_zero_means_no_redundancy() {
        let mut cfg = small_config(3, Scheme::All);
        cfg.redundant_fraction = 0.0;
        let result = GridSim::execute(cfg, SeedSequence::new(74));
        assert!(result.records.iter().all(|r| !r.redundant));
        assert_eq!(result.cancels, 0);
    }

    #[test]
    fn fraction_splits_population() {
        let mut cfg = small_config(4, Scheme::All);
        cfg.redundant_fraction = 0.5;
        let result = GridSim::execute(cfg, SeedSequence::new(75));
        let r = result.stretch(JobClass::Redundant).n();
        let nr = result.stretch(JobClass::NonRedundant).n();
        let total = result.records.len() as f64;
        assert!(r > 0 && nr > 0);
        let frac = r as f64 / total;
        assert!((0.4..0.6).contains(&frac), "redundant fraction {frac}");
    }

    #[test]
    fn predictions_collected_when_enabled() {
        let mut cfg = small_config(2, Scheme::R(2));
        cfg.algorithm = Algorithm::Cbf;
        cfg.collect_predictions = true;
        cfg.window = Duration::from_secs(900.0);
        let result = GridSim::execute(cfg, SeedSequence::new(76));
        assert!(result.records.iter().all(|r| r.predicted_wait.is_some()));
        // Jobs that started instantly predicted zero wait.
        for r in &result.records {
            if r.wait().is_zero() && r.copies == 1 {
                assert_eq!(r.predicted_wait, Some(Duration::ZERO));
            }
        }
    }

    #[test]
    fn work_is_conserved_across_schemes() {
        let none = GridSim::execute(small_config(3, Scheme::None), SeedSequence::new(77));
        let all = GridSim::execute(small_config(3, Scheme::All), SeedSequence::new(77));
        assert!((none.total_work() - all.total_work()).abs() < 1e-6);
    }

    #[test]
    fn heterogeneous_jobs_only_target_big_enough_clusters() {
        use crate::config::ClusterSpec;
        use rbr_workload::LublinConfig;
        let cfg = GridConfig {
            clusters: vec![
                ClusterSpec::new(16, LublinConfig::paper_2006().with_mean_interarrival(8.0)),
                ClusterSpec::new(128, LublinConfig::paper_2006().with_mean_interarrival(8.0)),
            ],
            window: Duration::from_secs(1800.0),
            ..GridConfig::homogeneous(2, Scheme::All)
        };
        let result = GridSim::execute(cfg, SeedSequence::new(78));
        for r in &result.records {
            if r.ran_on == 0 {
                assert!(
                    r.nodes <= 16,
                    "{} nodes ran on the 16-node cluster",
                    r.nodes
                );
            }
            // Jobs from the big cluster wider than 16 nodes must run home.
            if r.home == 1 && r.nodes > 16 {
                assert_eq!(r.ran_on, 1);
            }
        }
    }

    #[test]
    fn every_algorithm_completes_the_run() {
        for alg in Algorithm::all() {
            let mut cfg = small_config(2, Scheme::R(2));
            cfg.algorithm = alg;
            cfg.window = Duration::from_secs(900.0);
            let result = GridSim::execute(cfg, SeedSequence::new(79));
            assert!(!result.records.is_empty(), "{alg} produced no records");
        }
    }

    #[test]
    fn stretches_are_at_least_one() {
        let result = GridSim::execute(small_config(3, Scheme::Half), SeedSequence::new(80));
        for r in &result.records {
            assert!(r.stretch() >= 1.0 - 1e-12);
        }
    }

    // ---- faulty middleware ------------------------------------------

    use rbr_faults::{Delay, Outage};

    #[test]
    fn faultless_run_never_touches_fault_counters() {
        let result = GridSim::execute(small_config(3, Scheme::All), SeedSequence::new(90));
        assert_eq!(result.zombie_starts, 0);
        assert_eq!(result.wasted_node_secs, 0.0);
        assert_eq!(result.lost_submits, 0);
        assert_eq!(result.lost_cancels, 0);
        assert_eq!(result.dropped_copies, 0);
        assert_eq!(result.outage_kills, 0);
        assert_eq!(result.waste_fraction(), 0.0);
    }

    #[test]
    fn faulty_run_is_deterministic() {
        let faulty = || {
            let mut cfg = small_config(3, Scheme::All);
            cfg.faults.cancel_loss = 0.5;
            cfg.faults.cancel_delay = Delay::Exp {
                mean: Duration::from_secs(30.0),
            };
            cfg.faults.submit_delay = Delay::Uniform {
                lo: Duration::from_secs(0.1),
                hi: Duration::from_secs(2.0),
            };
            GridSim::execute(cfg, SeedSequence::new(91))
        };
        let a = faulty();
        let b = faulty();
        assert_eq!(a.records, b.records);
        assert_eq!(a.zombie_starts, b.zombie_starts);
        assert_eq!(a.wasted_node_secs, b.wasted_node_secs);
        assert_eq!(a.lost_cancels, b.lost_cancels);
        assert_eq!(a.submits, b.submits);
    }

    #[test]
    fn fault_stream_does_not_perturb_the_workload() {
        // The fault stream is disjoint from the workload and selection
        // streams, so the paired design survives enabling faults: same
        // jobs, same arrivals, same sizes.
        let clean = GridSim::execute(small_config(3, Scheme::All), SeedSequence::new(92));
        let mut cfg = small_config(3, Scheme::All);
        cfg.faults.cancel_loss = 1.0;
        let dirty = GridSim::execute(cfg, SeedSequence::new(92));
        assert_eq!(clean.records.len(), dirty.records.len());
        for (a, b) in clean.records.iter().zip(&dirty.records) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.home, b.home);
        }
    }

    #[test]
    fn lost_cancels_create_zombies_and_waste() {
        let mut cfg = small_config(3, Scheme::All);
        cfg.faults.cancel_loss = 1.0; // every cancellation vanishes
        let result = GridSim::execute(cfg, SeedSequence::new(93));
        assert!(result.lost_cancels > 0);
        assert!(result.zombie_starts > 0, "uncancelled copies must start");
        assert!(result.wasted_node_secs > 0.0, "zombies waste node time");
        assert!(result.waste_fraction() > 0.0);
        // Every job still completes exactly once.
        assert_eq!(
            result.records.len(),
            result
                .records
                .iter()
                .map(|r| r.job)
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
        for r in &result.records {
            assert_eq!(r.completion, r.start + r.runtime);
        }
    }

    #[test]
    fn certain_submit_loss_drops_remote_copies_but_jobs_survive() {
        let mut cfg = small_config(3, Scheme::All);
        cfg.faults.submit_loss = 1.0;
        cfg.faults.max_retries = 2;
        let result = GridSim::execute(cfg, SeedSequence::new(94));
        // Remote copies exhaust their retries and are dropped; the home
        // copy escalates to guaranteed delivery, so every job completes.
        assert!(result.dropped_copies > 0);
        assert!(result.lost_submits > 0);
        assert!(!result.records.is_empty());
        for r in &result.records {
            assert_eq!(r.home, r.ran_on, "only home copies can be delivered");
        }
    }

    #[test]
    fn outage_kills_work_and_every_job_still_completes() {
        let mut cfg = small_config(2, Scheme::None);
        // Make the outage bite: down long enough to catch running jobs.
        cfg.faults.outages = vec![Outage {
            cluster: 0,
            down: SimTime::from_secs(600.0),
            recover: SimTime::from_secs(1200.0),
        }];
        let result = GridSim::execute(cfg, SeedSequence::new(95));
        assert!(result.outage_kills > 0, "a mid-run outage must kill work");
        assert!(result.wasted_node_secs > 0.0);
        assert!(!result.records.is_empty());
        for r in &result.records {
            assert_eq!(r.completion, r.start + r.runtime);
            assert!(r.start >= r.arrival);
        }
        // Determinism holds with outages too.
        let mut cfg2 = small_config(2, Scheme::None);
        cfg2.faults.outages = vec![Outage {
            cluster: 0,
            down: SimTime::from_secs(600.0),
            recover: SimTime::from_secs(1200.0),
        }];
        let again = GridSim::execute(cfg2, SeedSequence::new(95));
        assert_eq!(result.records, again.records);
        assert_eq!(result.outage_kills, again.outage_kills);
    }

    #[test]
    fn delayed_cancels_still_complete_every_job() {
        let mut cfg = small_config(4, Scheme::All);
        cfg.faults.cancel_delay = Delay::Fixed(Duration::from_secs(120.0));
        cfg.faults.submit_delay = Delay::Fixed(Duration::from_secs(1.0));
        let result = GridSim::execute(cfg, SeedSequence::new(96));
        assert!(!result.records.is_empty());
        for r in &result.records {
            assert_eq!(r.completion, r.start + r.runtime);
        }
        // A 2-minute cancellation lag on an ALL scheme must leak some
        // starts that the zero-latency callback would have prevented.
        assert!(result.zombie_starts > 0 || result.wasted_node_secs > 0.0);
    }

    #[test]
    fn waste_grows_with_cancellation_loss() {
        let run = |loss: f64| {
            let mut cfg = small_config(3, Scheme::All);
            cfg.faults.cancel_loss = loss;
            cfg.faults.cancel_delay = Delay::Fixed(Duration::from_secs(5.0));
            GridSim::execute(cfg, SeedSequence::new(97)).wasted_node_secs
        };
        let w0 = run(0.0);
        let w5 = run(0.5);
        let w10 = run(1.0);
        assert!(w0 <= w5 + 1e-9, "waste({w0}) at loss 0 vs {w5} at 0.5");
        assert!(w5 <= w10 + 1e-9, "waste({w5}) at loss 0.5 vs {w10} at 1.0");
        assert!(w10 > 0.0);
    }
}
