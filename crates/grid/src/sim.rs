//! The multi-cluster discrete-event simulation.
//!
//! Each cluster runs its own batch scheduler and receives its own job
//! stream. A redundant job submits copies to its home cluster plus
//! randomly selected remotes; the instant any copy is granted nodes, the
//! job starts there and every other copy is cancelled (the zero-latency
//! callback). If two clusters grant copies at the same simulated instant,
//! the engine commits them in deterministic event order and revokes the
//! losers (`Scheduler::abort`), which is exactly what an instantaneous
//! cancellation callback would do.
//!
//! # Faulty middleware
//!
//! With a non-default [`rbr_faults::FaultSpec`] in the configuration,
//! the control traffic above flows through an unreliable middleware
//! instead ([`FaultModel`]): submissions and cancellations take time,
//! get lost (lost submissions retry with bounded exponential backoff;
//! lost cancellations are gone for good), and clusters suffer scheduled
//! outages that wipe their scheduler state. The protocol then changes in
//! the ways real placeholder scheduling degrades:
//!
//! * every copy is dispatched at arrival (no zero-latency short-circuit)
//!   and reaches its scheduler only when its submit message arrives;
//! * the cancellation callback is sent once, when the first copy starts;
//!   copies whose cancel message is lost or late keep queueing and may
//!   start anyway — **zombies** whose node-time is wasted;
//! * the first copy to *finish* completes the job (normally the winner;
//!   after an outage killed the winner, possibly a surviving zombie);
//! * outages kill running copies (partial work wasted) and evaporate
//!   queued ones; the middleware re-delivers evaporated copies — and
//!   resubmits a killed winner — at recovery.
//!
//! The faultless configuration takes exactly the original code path and
//! never touches the fault stream, so its results are bit-identical to a
//! build without fault support.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rbr_faults::FaultModel;
use rbr_sched::{Request, RequestId, Scheduler};
use rbr_simcore::{unit, Duration, Engine, SeedSequence, SimTime};
use rbr_workload::{JobSpec, LublinModel};

use crate::config::GridConfig;
use crate::record::{JobRecord, RunResult};

/// Engine events.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// A job arrives (index into the job table).
    Submit(usize),
    /// A running request finishes.
    Complete {
        /// Cluster it ran on.
        cluster: usize,
        /// Dense request index.
        req: u64,
    },
    /// Faulty middleware: a submit message reaches its scheduler.
    DeliverSubmit {
        /// Job index.
        job: usize,
        /// Copy index within the job.
        copy: usize,
    },
    /// Faulty middleware: a cancel message reaches its scheduler.
    DeliverCancel {
        /// Job index.
        job: usize,
        /// Copy index within the job.
        copy: usize,
    },
    /// A scheduled cluster outage begins.
    OutageDown {
        /// Affected cluster.
        cluster: usize,
        /// Instant the cluster accepts traffic again.
        recover: SimTime,
    },
}

/// Which job (and which of its copies) a request belongs to.
#[derive(Clone, Copy, Debug)]
struct ReqInfo {
    job: usize,
    copy: usize,
}

/// Lifecycle of one copy under faulty middleware.
#[derive(Clone, Copy, Debug, PartialEq)]
enum CopyPhase {
    /// Submit message travelling (or awaiting an outage recovery).
    InFlight,
    /// Waiting in a scheduler's queue.
    Queued,
    /// Granted nodes and executing since `start`.
    Running {
        /// Execution start instant.
        start: SimTime,
    },
    /// Cancel overtook the submit; discarded on delivery.
    Doomed,
    /// Cancelled, killed, dropped, or finished.
    Dead,
}

/// One copy of a job under faulty middleware.
#[derive(Clone, Copy, Debug)]
struct CopyState {
    cluster: usize,
    rid: Option<RequestId>,
    phase: CopyPhase,
}

/// Mutable per-job state during the run.
#[derive(Clone, Debug, Default)]
struct JobState {
    started: Option<(usize, SimTime)>,
    requests: Vec<(usize, RequestId)>,
    redundant: bool,
    predicted_wait: Option<Duration>,
    done: bool,
    /// Copy table (faulty-middleware runs only; empty otherwise).
    copies: Vec<CopyState>,
    /// Index of the copy whose start committed the job (faulty runs).
    winner: Option<usize>,
}

/// The simulation: build with [`GridSim::new`], execute with
/// [`GridSim::run`], or do both with [`GridSim::execute`].
pub struct GridSim {
    config: GridConfig,
    engine: Engine<Event>,
    scheds: Vec<Box<dyn Scheduler>>,
    jobs: Vec<(JobSpec, usize)>,
    states: Vec<JobState>,
    reqs: Vec<ReqInfo>,
    rng: StdRng,
    result: RunResult,
    records: Vec<Option<JobRecord>>,
    scratch: Vec<RequestId>,
    worklist: VecDeque<(usize, RequestId)>,
    /// Fault sampler on its own seed stream; `None` runs the original
    /// perfect-middleware protocol.
    faults: Option<FaultModel>,
    /// Per-cluster outage horizon: cluster `c` is down while
    /// `now < outage_until[c]`.
    outage_until: Vec<SimTime>,
    /// Tombstones for killed requests whose `Complete` event is still in
    /// the engine (it has no cancellation API).
    dead: Vec<bool>,
}

impl GridSim {
    /// Builds a simulation: generates every cluster's job stream from the
    /// seed hierarchy and schedules the submission events.
    ///
    /// Stream `seed.child(i)` drives cluster `i`'s workload;
    /// `seed.child(n_clusters)` drives redundancy coin-flips and target
    /// selection. Identical seeds therefore give identical job streams
    /// across different schemes — the paired-comparison design of the
    /// paper.
    pub fn new(config: GridConfig, seed: SeedSequence) -> Self {
        config.validate();
        let mut jobs: Vec<(JobSpec, usize)> = Vec::new();
        for (i, cluster) in config.clusters.iter().enumerate() {
            let model = LublinModel::new(cluster.workload);
            let mut rng = seed.child(i as u64).rng();
            for spec in model.generate(&mut rng, config.window, &config.estimates) {
                jobs.push((spec, i));
            }
        }
        Self::with_jobs(config, jobs, seed)
    }

    /// Builds a simulation over an explicit job table — the trace-replay
    /// path ("we conducted some simulations using real-world traces",
    /// §3.1.1). Each entry is a job spec plus its home cluster index;
    /// `config.window` and per-cluster workload models are ignored,
    /// everything else (scheme, selection, algorithm…) applies as usual.
    ///
    /// # Panics
    /// Panics if a home cluster index is out of range or a job requests
    /// more nodes than its home cluster has.
    pub fn with_jobs(
        config: GridConfig,
        jobs: Vec<(JobSpec, usize)>,
        seed: SeedSequence,
    ) -> Self {
        config.validate();
        let n = config.n_clusters();
        for (spec, home) in &jobs {
            assert!(*home < n, "home cluster {home} out of range");
            assert!(
                spec.nodes <= config.clusters[*home].nodes,
                "job requests {} nodes but home cluster {home} has {}",
                spec.nodes,
                config.clusters[*home].nodes
            );
        }
        let mut engine = Engine::new();
        for (j, (spec, _)) in jobs.iter().enumerate() {
            engine.schedule(spec.arrival, Event::Submit(j));
        }
        // The fault stream is child(n + 1): disjoint from the per-cluster
        // workload streams child(0..n) and the redundancy/selection
        // stream child(n), so enabling faults never perturbs either.
        let faults = if config.faults.is_disabled() {
            None
        } else {
            for o in &config.faults.outages {
                engine.schedule(
                    o.down,
                    Event::OutageDown {
                        cluster: o.cluster,
                        recover: o.recover,
                    },
                );
            }
            Some(FaultModel::new(
                config.faults.clone(),
                seed.child(n as u64 + 1),
            ))
        };
        let scheds: Vec<Box<dyn Scheduler>> = config
            .clusters
            .iter()
            .map(|c| config.algorithm.build_with_cycle(c.nodes, config.cbf_cycle))
            .collect();
        let states = vec![JobState::default(); jobs.len()];
        let records = vec![None; jobs.len()];
        GridSim {
            rng: seed.child(n as u64).rng(),
            result: RunResult {
                max_queue_len: vec![0; n],
                ..Default::default()
            },
            engine,
            scheds,
            states,
            records,
            reqs: Vec::with_capacity(jobs.len() * 2),
            jobs,
            config,
            scratch: Vec::new(),
            worklist: VecDeque::new(),
            faults,
            outage_until: vec![SimTime::ZERO; n],
            dead: Vec::new(),
        }
    }

    /// Convenience: build and run in one call.
    pub fn execute(config: GridConfig, seed: SeedSequence) -> RunResult {
        GridSim::new(config, seed).run()
    }

    /// Number of jobs in the run.
    pub fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Runs the simulation to completion and returns the results.
    ///
    /// # Panics
    /// Panics if any job fails to start or complete — that would be a
    /// scheduler bug, not a valid outcome.
    pub fn run(mut self) -> RunResult {
        while let Some((now, event)) = self.engine.pop() {
            match event {
                Event::Submit(j) => self.handle_submit(now, j),
                Event::Complete { cluster, req } => self.handle_complete(now, cluster, req),
                Event::DeliverSubmit { job, copy } => self.handle_deliver_submit(now, job, copy),
                Event::DeliverCancel { job, copy } => self.handle_deliver_cancel(now, job, copy),
                Event::OutageDown { cluster, recover } => {
                    self.handle_outage_down(now, cluster, recover)
                }
            }
        }
        self.result.events = self.engine.processed();
        self.result.backfills = self.scheds.iter().map(|s| s.backfills()).sum();
        let records = std::mem::take(&mut self.records);
        self.result.records = records
            .into_iter()
            .enumerate()
            .map(|(j, r)| r.unwrap_or_else(|| panic!("job {j} never completed")))
            .collect();
        self.result
    }

    fn handle_submit(&mut self, now: SimTime, j: usize) {
        let (spec, home) = self.jobs[j];
        let n = self.config.n_clusters();

        // Does this job use redundancy, and where do its copies go?
        let wants_redundancy = self.config.scheme.is_redundant(n)
            && (self.config.redundant_fraction >= 1.0
                || unit(&mut self.rng) < self.config.redundant_fraction);
        let mut targets = vec![home];
        if wants_redundancy {
            let copies = self.config.scheme.copies(n);
            let eligible: Vec<usize> = (0..n)
                .filter(|&c| c != home && self.config.clusters[c].nodes >= spec.nodes)
                .collect();
            let queue_lens: Vec<usize> = self.scheds.iter().map(|s| s.queue_len()).collect();
            targets.extend(self.config.selection.choose(
                &mut self.rng,
                &eligible,
                copies - 1,
                &queue_lens,
            ));
        }
        self.states[j].redundant = targets.len() > 1;

        if self.faults.is_some() {
            // Unreliable middleware: every copy becomes a message. No
            // zero-latency short-circuit — all copies are dispatched.
            self.dispatch_faulty_submits(now, j, &targets);
            return;
        }

        for (copy, c) in targets.into_iter().enumerate() {
            if self.states[j].started.is_some() {
                // The callback already fired: the remaining copies are
                // never submitted (they would be cancelled in the same
                // instant with no effect on any schedule).
                break;
            }
            let rid = RequestId(self.reqs.len() as u64);
            self.reqs.push(ReqInfo { job: j, copy });
            let estimate = if c == home {
                spec.estimate
            } else {
                spec.estimate.scale(1.0 + self.config.remote_inflation)
            };
            let req = Request::new(rid, spec.nodes, estimate, now);
            self.result.submits += 1;
            self.scratch.clear();
            self.scheds[c].submit(now, req, &mut self.scratch);
            self.states[j].requests.push((c, rid));
            for &started in &self.scratch {
                self.worklist.push_back((c, started));
            }
            if self.config.collect_predictions {
                let wait = self.scheds[c]
                    .predicted_start(now, rid)
                    .map(|s| s.since(now))
                    .expect("request just submitted must be known");
                let best = match self.states[j].predicted_wait {
                    Some(prev) => prev.min(wait),
                    None => wait,
                };
                self.states[j].predicted_wait = Some(best);
            }
            self.note_queue(c);
            self.commit_starts(now);
        }
    }

    fn handle_complete(&mut self, now: SimTime, cluster: usize, req: u64) {
        self.result.makespan = now;
        if self.faults.is_some() {
            self.handle_complete_faulty(now, cluster, req);
            return;
        }
        let rid = RequestId(req);
        let j = self.reqs[req as usize].job;
        let state = &mut self.states[j];
        debug_assert_eq!(state.started.map(|(c, _)| c), Some(cluster));
        debug_assert!(!state.done, "job {j} completed twice");
        state.done = true;

        let (spec, home) = self.jobs[j];
        let (_, start) = state.started.expect("completing job must have started");
        self.records[j] = Some(JobRecord {
            job: j,
            home,
            ran_on: cluster,
            nodes: spec.nodes,
            arrival: spec.arrival,
            start,
            completion: now,
            runtime: spec.runtime,
            redundant: state.redundant,
            copies: state.requests.len() as u32,
            predicted_wait: state.predicted_wait,
        });

        self.scratch.clear();
        self.scheds[cluster].complete(now, rid, &mut self.scratch);
        let newly: Vec<RequestId> = self.scratch.drain(..).collect();
        for started in newly {
            self.worklist.push_back((cluster, started));
        }
        self.commit_starts(now);
    }

    /// Faulty middleware: turns each copy of job `j` into a submit
    /// message routed through the [`FaultModel`].
    fn dispatch_faulty_submits(&mut self, now: SimTime, j: usize, targets: &[usize]) {
        for (copy, &c) in targets.iter().enumerate() {
            // Copy 0 is the home submission: it escalates to guaranteed
            // delivery after the retry budget, so no job can vanish.
            let plan = self
                .faults
                .as_mut()
                .expect("faulty dispatch requires a fault model")
                .plan_submit(now, copy == 0);
            self.result.lost_submits += plan.lost_attempts as u64;
            let phase = match plan.delivery {
                Some(at) => {
                    self.engine.schedule(at, Event::DeliverSubmit { job: j, copy });
                    CopyPhase::InFlight
                }
                None => {
                    self.result.dropped_copies += 1;
                    CopyPhase::Dead
                }
            };
            self.states[j].copies.push(CopyState {
                cluster: c,
                rid: None,
                phase,
            });
        }
    }

    /// A submit message arrives at its scheduler (faulty runs only).
    fn handle_deliver_submit(&mut self, now: SimTime, j: usize, copy: usize) {
        let c = self.states[j].copies[copy].cluster;
        if now < self.outage_until[c] {
            // The cluster is down: the middleware holds the message and
            // re-delivers at recovery.
            self.engine.schedule(
                self.outage_until[c],
                Event::DeliverSubmit { job: j, copy },
            );
            return;
        }
        match self.states[j].copies[copy].phase {
            CopyPhase::InFlight => {}
            CopyPhase::Doomed => {
                // The cancel overtook this submit; the broker discards it.
                self.states[j].copies[copy].phase = CopyPhase::Dead;
                return;
            }
            CopyPhase::Dead => return,
            phase => unreachable!("submit delivered to copy in phase {phase:?}"),
        }
        if self.states[j].done {
            // The job finished while this (retried or delayed) submission
            // was in flight; the broker discards it on arrival.
            self.states[j].copies[copy].phase = CopyPhase::Dead;
            return;
        }
        let (spec, home) = self.jobs[j];
        let rid = RequestId(self.reqs.len() as u64);
        self.reqs.push(ReqInfo { job: j, copy });
        self.dead.push(false);
        let estimate = if c == home {
            spec.estimate
        } else {
            spec.estimate.scale(1.0 + self.config.remote_inflation)
        };
        let req = Request::new(rid, spec.nodes, estimate, now);
        self.result.submits += 1;
        self.scratch.clear();
        self.scheds[c].submit(now, req, &mut self.scratch);
        self.states[j].copies[copy].rid = Some(rid);
        self.states[j].copies[copy].phase = CopyPhase::Queued;
        for &started in &self.scratch {
            self.worklist.push_back((c, started));
        }
        if self.config.collect_predictions {
            let wait = self.scheds[c]
                .predicted_start(now, rid)
                .map(|s| s.since(now))
                .expect("request just submitted must be known");
            let best = match self.states[j].predicted_wait {
                Some(prev) => prev.min(wait),
                None => wait,
            };
            self.states[j].predicted_wait = Some(best);
        }
        self.note_queue(c);
        self.commit_starts(now);
    }

    /// A cancel message arrives at its scheduler (faulty runs only).
    fn handle_deliver_cancel(&mut self, now: SimTime, j: usize, copy: usize) {
        let cs = self.states[j].copies[copy];
        if now < self.outage_until[cs.cluster] {
            self.engine.schedule(
                self.outage_until[cs.cluster],
                Event::DeliverCancel { job: j, copy },
            );
            return;
        }
        match cs.phase {
            CopyPhase::InFlight => {
                self.states[j].copies[copy].phase = CopyPhase::Doomed;
            }
            CopyPhase::Queued => {
                let rid = cs.rid.expect("queued copy has a request id");
                self.scratch.clear();
                if self.scheds[cs.cluster].cancel(now, rid, &mut self.scratch) {
                    self.result.cancels += 1;
                }
                self.states[j].copies[copy].phase = CopyPhase::Dead;
                let newly: Vec<RequestId> = self.scratch.drain(..).collect();
                for started in newly {
                    self.worklist.push_back((cs.cluster, started));
                }
                self.note_queue(cs.cluster);
                self.commit_starts(now);
            }
            CopyPhase::Running { start } => {
                // Kill the running copy; its partial work is wasted.
                let rid = cs.rid.expect("running copy has a request id");
                let (spec, _) = self.jobs[j];
                self.result.cancels += 1;
                self.result.wasted_node_secs +=
                    spec.nodes as f64 * now.since(start).as_secs();
                self.dead[rid.0 as usize] = true;
                self.states[j].copies[copy].phase = CopyPhase::Dead;
                self.scratch.clear();
                self.scheds[cs.cluster].complete(now, rid, &mut self.scratch);
                let newly: Vec<RequestId> = self.scratch.drain(..).collect();
                for started in newly {
                    self.worklist.push_back((cs.cluster, started));
                }
                let stale_winner_killed =
                    self.states[j].winner == Some(copy) && !self.states[j].done;
                if stale_winner_killed {
                    // A stale cancel (sent before an outage restarted the
                    // race) caught up with the copy that is now the
                    // winner. The submitter notices the kill and
                    // resubmits this copy with guaranteed delivery.
                    self.states[j].started = None;
                    self.states[j].winner = None;
                    let plan = self
                        .faults
                        .as_mut()
                        .expect("faulty path has a fault model")
                        .plan_submit(now, true);
                    self.result.lost_submits += plan.lost_attempts as u64;
                    let at = plan.delivery.expect("guaranteed delivery");
                    self.states[j].copies[copy].rid = None;
                    self.states[j].copies[copy].phase = CopyPhase::InFlight;
                    self.engine.schedule(at, Event::DeliverSubmit { job: j, copy });
                }
                self.note_queue(cs.cluster);
                self.commit_starts(now);
            }
            CopyPhase::Doomed | CopyPhase::Dead => {}
        }
    }

    /// A running request finished under faulty middleware: the first copy
    /// of a job to finish completes the job; any later completion is a
    /// zombie whose execution was pure waste.
    fn handle_complete_faulty(&mut self, now: SimTime, cluster: usize, req: u64) {
        if self.dead[req as usize] {
            // Killed earlier (cancel or outage); stale engine event.
            return;
        }
        let ReqInfo { job: j, copy } = self.reqs[req as usize];
        let cs = self.states[j].copies[copy];
        let CopyPhase::Running { start } = cs.phase else {
            unreachable!("completing copy must be running, was {:?}", cs.phase)
        };
        self.states[j].copies[copy].phase = CopyPhase::Dead;
        self.scratch.clear();
        self.scheds[cluster].complete(now, RequestId(req), &mut self.scratch);
        let newly: Vec<RequestId> = self.scratch.drain(..).collect();
        for started in newly {
            self.worklist.push_back((cluster, started));
        }
        let (spec, home) = self.jobs[j];
        if self.states[j].done {
            // Zombie ran to natural completion: its whole execution is
            // wasted node-time.
            self.result.wasted_node_secs += spec.nodes as f64 * spec.runtime.as_secs();
        } else {
            self.states[j].done = true;
            self.records[j] = Some(JobRecord {
                job: j,
                home,
                ran_on: cluster,
                nodes: spec.nodes,
                arrival: spec.arrival,
                start,
                completion: now,
                runtime: spec.runtime,
                redundant: self.states[j].redundant,
                copies: self.states[j].copies.len() as u32,
                predicted_wait: self.states[j].predicted_wait,
            });
        }
        self.note_queue(cluster);
        self.commit_starts(now);
    }

    /// A scheduled outage begins: the cluster's scheduler loses all
    /// state. Running copies are killed (the job restarts if the winner
    /// died), queued copies evaporate and are re-delivered at recovery.
    fn handle_outage_down(&mut self, now: SimTime, c: usize, recover: SimTime) {
        self.outage_until[c] = recover;
        self.scheds[c] = self
            .config
            .algorithm
            .build_with_cycle(self.config.clusters[c].nodes, self.config.cbf_cycle);
        for j in 0..self.states.len() {
            for copy in 0..self.states[j].copies.len() {
                let cs = self.states[j].copies[copy];
                if cs.cluster != c {
                    continue;
                }
                match cs.phase {
                    CopyPhase::Queued => {
                        // Evaporated with the scheduler; the middleware
                        // notices at recovery and re-delivers.
                        self.result.outage_kills += 1;
                        self.states[j].copies[copy].rid = None;
                        self.states[j].copies[copy].phase = CopyPhase::InFlight;
                        self.engine.schedule(recover, Event::DeliverSubmit { job: j, copy });
                    }
                    CopyPhase::Running { start } => {
                        let rid = cs.rid.expect("running copy has a request id");
                        let (spec, _) = self.jobs[j];
                        self.result.outage_kills += 1;
                        self.result.wasted_node_secs +=
                            spec.nodes as f64 * now.since(start).as_secs();
                        self.dead[rid.0 as usize] = true;
                        if self.states[j].winner == Some(copy) && !self.states[j].done {
                            // The job itself died with the cluster; the
                            // submitter resubmits this copy at recovery.
                            self.states[j].started = None;
                            self.states[j].winner = None;
                            self.states[j].copies[copy].rid = None;
                            self.states[j].copies[copy].phase = CopyPhase::InFlight;
                            self.engine
                                .schedule(recover, Event::DeliverSubmit { job: j, copy });
                        } else {
                            self.states[j].copies[copy].phase = CopyPhase::Dead;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Faulty middleware's cancellation callback: fired once, when the
    /// first copy of job `j` starts. Each live sibling gets its own
    /// cancel message through the fault model.
    fn send_cancels(&mut self, now: SimTime, j: usize, winner_copy: usize) {
        for copy in 0..self.states[j].copies.len() {
            if copy == winner_copy {
                continue;
            }
            match self.states[j].copies[copy].phase {
                CopyPhase::InFlight | CopyPhase::Queued | CopyPhase::Running { .. } => {}
                CopyPhase::Doomed | CopyPhase::Dead => continue,
            }
            let plan = self
                .faults
                .as_mut()
                .expect("faulty path has a fault model")
                .plan_cancel(now);
            match plan.delivery {
                Some(at) => {
                    self.engine.schedule(at, Event::DeliverCancel { job: j, copy });
                }
                None => self.result.lost_cancels += 1,
            }
        }
    }

    /// Faulty variant of the start worklist: a start commits the job if
    /// it is the first, otherwise the copy becomes a zombie (no
    /// zero-latency revocation — the cancellation callback travels as a
    /// message like everything else).
    fn commit_starts_faulty(&mut self, now: SimTime) {
        while let Some((c, rid)) = self.worklist.pop_front() {
            let ReqInfo { job: j, copy } = self.reqs[rid.0 as usize];
            debug_assert!(!self.dead[rid.0 as usize], "dead request started");
            debug_assert_eq!(self.states[j].copies[copy].phase, CopyPhase::Queued);
            self.states[j].copies[copy].phase = CopyPhase::Running { start: now };
            let (spec, _) = self.jobs[j];
            self.engine.schedule(
                now + spec.runtime,
                Event::Complete {
                    cluster: c,
                    req: rid.0,
                },
            );
            if self.states[j].started.is_none() && !self.states[j].done {
                self.states[j].started = Some((c, now));
                self.states[j].winner = Some(copy);
                self.send_cancels(now, j, copy);
            } else {
                self.result.zombie_starts += 1;
            }
            self.note_queue(c);
        }
    }

    /// Drains the start worklist: commits job starts, cancels siblings,
    /// revokes starts whose job already began elsewhere, and follows any
    /// cascade of new starts those actions release.
    fn commit_starts(&mut self, now: SimTime) {
        if self.faults.is_some() {
            self.commit_starts_faulty(now);
            return;
        }
        while let Some((c, rid)) = self.worklist.pop_front() {
            let j = self.reqs[rid.0 as usize].job;
            if self.states[j].started.is_some() {
                // Lost the same-instant race: revoke.
                self.result.aborts += 1;
                self.scratch.clear();
                self.scheds[c].abort(now, rid, &mut self.scratch);
                let newly: Vec<RequestId> = self.scratch.drain(..).collect();
                for started in newly {
                    self.worklist.push_back((c, started));
                }
                continue;
            }
            // Commit: the job starts here, now.
            self.states[j].started = Some((c, now));
            let (spec, _) = self.jobs[j];
            self.engine.schedule(
                now + spec.runtime,
                Event::Complete {
                    cluster: c,
                    req: rid.0,
                },
            );
            // The callback: cancel every sibling copy.
            let siblings = self.states[j].requests.clone();
            for (c2, rid2) in siblings {
                if rid2 == rid {
                    continue;
                }
                self.scratch.clear();
                if self.scheds[c2].cancel(now, rid2, &mut self.scratch) {
                    self.result.cancels += 1;
                }
                let newly: Vec<RequestId> = self.scratch.drain(..).collect();
                for started in newly {
                    self.worklist.push_back((c2, started));
                }
                self.note_queue(c2);
            }
        }
    }

    fn note_queue(&mut self, c: usize) {
        let len = self.scheds[c].queue_len();
        if len > self.result.max_queue_len[c] {
            self.result.max_queue_len[c] = len;
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::JobClass;
    use crate::scheme::Scheme;
    use rbr_sched::Algorithm;

    fn small_config(n: usize, scheme: Scheme) -> GridConfig {
        let mut cfg = GridConfig::homogeneous(n, scheme);
        cfg.window = Duration::from_secs(1800.0); // half an hour keeps tests fast
        cfg
    }

    #[test]
    fn all_jobs_complete_without_redundancy() {
        let cfg = small_config(2, Scheme::None);
        let result = GridSim::execute(cfg, SeedSequence::new(70));
        assert!(!result.records.is_empty());
        for r in &result.records {
            assert!(r.start >= r.arrival);
            assert_eq!(r.completion, r.start + r.runtime);
            assert_eq!(r.home, r.ran_on, "no redundancy: jobs run at home");
            assert!(!r.redundant);
            assert_eq!(r.copies, 1);
        }
        assert_eq!(result.cancels, 0);
        assert_eq!(result.submits, result.records.len() as u64);
    }

    #[test]
    fn redundant_jobs_cancel_losing_copies() {
        let cfg = small_config(4, Scheme::All);
        let result = GridSim::execute(cfg, SeedSequence::new(71));
        let redundant = result.records.iter().filter(|r| r.redundant).count();
        assert!(redundant > 0, "ALL scheme must produce redundant jobs");
        // Every copy beyond the winner is either cancelled, aborted, or
        // was never submitted (job started before later copies went out).
        assert!(result.cancels > 0);
        assert!(result.submits >= result.records.len() as u64);
        for r in &result.records {
            assert!(r.copies >= 1 && r.copies <= 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = GridSim::execute(small_config(3, Scheme::R(2)), SeedSequence::new(72));
        let b = GridSim::execute(small_config(3, Scheme::R(2)), SeedSequence::new(72));
        assert_eq!(a.records, b.records);
        assert_eq!(a.submits, b.submits);
        assert_eq!(a.cancels, b.cancels);
        assert_eq!(a.aborts, b.aborts);
    }

    #[test]
    fn different_schemes_share_job_streams() {
        let none = GridSim::execute(small_config(3, Scheme::None), SeedSequence::new(73));
        let all = GridSim::execute(small_config(3, Scheme::All), SeedSequence::new(73));
        assert_eq!(none.records.len(), all.records.len());
        for (a, b) in none.records.iter().zip(&all.records) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.home, b.home);
        }
    }

    #[test]
    fn fraction_zero_means_no_redundancy() {
        let mut cfg = small_config(3, Scheme::All);
        cfg.redundant_fraction = 0.0;
        let result = GridSim::execute(cfg, SeedSequence::new(74));
        assert!(result.records.iter().all(|r| !r.redundant));
        assert_eq!(result.cancels, 0);
    }

    #[test]
    fn fraction_splits_population() {
        let mut cfg = small_config(4, Scheme::All);
        cfg.redundant_fraction = 0.5;
        let result = GridSim::execute(cfg, SeedSequence::new(75));
        let r = result.stretch(JobClass::Redundant).n();
        let nr = result.stretch(JobClass::NonRedundant).n();
        let total = result.records.len() as f64;
        assert!(r > 0 && nr > 0);
        let frac = r as f64 / total;
        assert!((0.4..0.6).contains(&frac), "redundant fraction {frac}");
    }

    #[test]
    fn predictions_collected_when_enabled() {
        let mut cfg = small_config(2, Scheme::R(2));
        cfg.algorithm = Algorithm::Cbf;
        cfg.collect_predictions = true;
        cfg.window = Duration::from_secs(900.0);
        let result = GridSim::execute(cfg, SeedSequence::new(76));
        assert!(result
            .records
            .iter()
            .all(|r| r.predicted_wait.is_some()));
        // Jobs that started instantly predicted zero wait.
        for r in &result.records {
            if r.wait().is_zero() && r.copies == 1 {
                assert_eq!(r.predicted_wait, Some(Duration::ZERO));
            }
        }
    }

    #[test]
    fn work_is_conserved_across_schemes() {
        let none = GridSim::execute(small_config(3, Scheme::None), SeedSequence::new(77));
        let all = GridSim::execute(small_config(3, Scheme::All), SeedSequence::new(77));
        assert!((none.total_work() - all.total_work()).abs() < 1e-6);
    }

    #[test]
    fn heterogeneous_jobs_only_target_big_enough_clusters() {
        use crate::config::ClusterSpec;
        use rbr_workload::LublinConfig;
        let cfg = GridConfig {
            clusters: vec![
                ClusterSpec::new(16, LublinConfig::paper_2006().with_mean_interarrival(8.0)),
                ClusterSpec::new(128, LublinConfig::paper_2006().with_mean_interarrival(8.0)),
            ],
            window: Duration::from_secs(1800.0),
            ..GridConfig::homogeneous(2, Scheme::All)
        };
        let result = GridSim::execute(cfg, SeedSequence::new(78));
        for r in &result.records {
            if r.ran_on == 0 {
                assert!(r.nodes <= 16, "{} nodes ran on the 16-node cluster", r.nodes);
            }
            // Jobs from the big cluster wider than 16 nodes must run home.
            if r.home == 1 && r.nodes > 16 {
                assert_eq!(r.ran_on, 1);
            }
        }
    }

    #[test]
    fn every_algorithm_completes_the_run() {
        for alg in Algorithm::all() {
            let mut cfg = small_config(2, Scheme::R(2));
            cfg.algorithm = alg;
            cfg.window = Duration::from_secs(900.0);
            let result = GridSim::execute(cfg, SeedSequence::new(79));
            assert!(!result.records.is_empty(), "{alg} produced no records");
        }
    }

    #[test]
    fn stretches_are_at_least_one() {
        let result = GridSim::execute(small_config(3, Scheme::Half), SeedSequence::new(80));
        for r in &result.records {
            assert!(r.stretch() >= 1.0 - 1e-12);
        }
    }

    // ---- faulty middleware ------------------------------------------

    use rbr_faults::{Delay, Outage};

    #[test]
    fn faultless_run_never_touches_fault_counters() {
        let result = GridSim::execute(small_config(3, Scheme::All), SeedSequence::new(90));
        assert_eq!(result.zombie_starts, 0);
        assert_eq!(result.wasted_node_secs, 0.0);
        assert_eq!(result.lost_submits, 0);
        assert_eq!(result.lost_cancels, 0);
        assert_eq!(result.dropped_copies, 0);
        assert_eq!(result.outage_kills, 0);
        assert_eq!(result.waste_fraction(), 0.0);
    }

    #[test]
    fn faulty_run_is_deterministic() {
        let faulty = || {
            let mut cfg = small_config(3, Scheme::All);
            cfg.faults.cancel_loss = 0.5;
            cfg.faults.cancel_delay = Delay::Exp {
                mean: Duration::from_secs(30.0),
            };
            cfg.faults.submit_delay = Delay::Uniform {
                lo: Duration::from_secs(0.1),
                hi: Duration::from_secs(2.0),
            };
            GridSim::execute(cfg, SeedSequence::new(91))
        };
        let a = faulty();
        let b = faulty();
        assert_eq!(a.records, b.records);
        assert_eq!(a.zombie_starts, b.zombie_starts);
        assert_eq!(a.wasted_node_secs, b.wasted_node_secs);
        assert_eq!(a.lost_cancels, b.lost_cancels);
        assert_eq!(a.submits, b.submits);
    }

    #[test]
    fn fault_stream_does_not_perturb_the_workload() {
        // The fault stream is disjoint from the workload and selection
        // streams, so the paired design survives enabling faults: same
        // jobs, same arrivals, same sizes.
        let clean = GridSim::execute(small_config(3, Scheme::All), SeedSequence::new(92));
        let mut cfg = small_config(3, Scheme::All);
        cfg.faults.cancel_loss = 1.0;
        let dirty = GridSim::execute(cfg, SeedSequence::new(92));
        assert_eq!(clean.records.len(), dirty.records.len());
        for (a, b) in clean.records.iter().zip(&dirty.records) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.home, b.home);
        }
    }

    #[test]
    fn lost_cancels_create_zombies_and_waste() {
        let mut cfg = small_config(3, Scheme::All);
        cfg.faults.cancel_loss = 1.0; // every cancellation vanishes
        let result = GridSim::execute(cfg, SeedSequence::new(93));
        assert!(result.lost_cancels > 0);
        assert!(result.zombie_starts > 0, "uncancelled copies must start");
        assert!(result.wasted_node_secs > 0.0, "zombies waste node time");
        assert!(result.waste_fraction() > 0.0);
        // Every job still completes exactly once.
        assert_eq!(
            result.records.len(),
            result.records.iter().map(|r| r.job).collect::<std::collections::HashSet<_>>().len()
        );
        for r in &result.records {
            assert_eq!(r.completion, r.start + r.runtime);
        }
    }

    #[test]
    fn certain_submit_loss_drops_remote_copies_but_jobs_survive() {
        let mut cfg = small_config(3, Scheme::All);
        cfg.faults.submit_loss = 1.0;
        cfg.faults.max_retries = 2;
        let result = GridSim::execute(cfg, SeedSequence::new(94));
        // Remote copies exhaust their retries and are dropped; the home
        // copy escalates to guaranteed delivery, so every job completes.
        assert!(result.dropped_copies > 0);
        assert!(result.lost_submits > 0);
        assert!(!result.records.is_empty());
        for r in &result.records {
            assert_eq!(r.home, r.ran_on, "only home copies can be delivered");
        }
    }

    #[test]
    fn outage_kills_work_and_every_job_still_completes() {
        let mut cfg = small_config(2, Scheme::None);
        // Make the outage bite: down long enough to catch running jobs.
        cfg.faults.outages = vec![Outage {
            cluster: 0,
            down: SimTime::from_secs(600.0),
            recover: SimTime::from_secs(1200.0),
        }];
        let result = GridSim::execute(cfg, SeedSequence::new(95));
        assert!(result.outage_kills > 0, "a mid-run outage must kill work");
        assert!(result.wasted_node_secs > 0.0);
        assert!(!result.records.is_empty());
        for r in &result.records {
            assert_eq!(r.completion, r.start + r.runtime);
            assert!(r.start >= r.arrival);
        }
        // Determinism holds with outages too.
        let mut cfg2 = small_config(2, Scheme::None);
        cfg2.faults.outages = vec![Outage {
            cluster: 0,
            down: SimTime::from_secs(600.0),
            recover: SimTime::from_secs(1200.0),
        }];
        let again = GridSim::execute(cfg2, SeedSequence::new(95));
        assert_eq!(result.records, again.records);
        assert_eq!(result.outage_kills, again.outage_kills);
    }

    #[test]
    fn delayed_cancels_still_complete_every_job() {
        let mut cfg = small_config(4, Scheme::All);
        cfg.faults.cancel_delay = Delay::Fixed(Duration::from_secs(120.0));
        cfg.faults.submit_delay = Delay::Fixed(Duration::from_secs(1.0));
        let result = GridSim::execute(cfg, SeedSequence::new(96));
        assert!(!result.records.is_empty());
        for r in &result.records {
            assert_eq!(r.completion, r.start + r.runtime);
        }
        // A 2-minute cancellation lag on an ALL scheme must leak some
        // starts that the zero-latency callback would have prevented.
        assert!(result.zombie_starts > 0 || result.wasted_node_secs > 0.0);
    }

    #[test]
    fn waste_grows_with_cancellation_loss() {
        let run = |loss: f64| {
            let mut cfg = small_config(3, Scheme::All);
            cfg.faults.cancel_loss = loss;
            cfg.faults.cancel_delay = Delay::Fixed(Duration::from_secs(5.0));
            GridSim::execute(cfg, SeedSequence::new(97)).wasted_node_secs
        };
        let w0 = run(0.0);
        let w5 = run(0.5);
        let w10 = run(1.0);
        assert!(w0 <= w5 + 1e-9, "waste({w0}) at loss 0 vs {w5} at 0.5");
        assert!(w5 <= w10 + 1e-9, "waste({w5}) at loss 0.5 vs {w10} at 1.0");
        assert!(w10 > 0.0);
    }
}
