//! Run-level observation: the driver-side extension of the scheduler
//! hook points in [`rbr_sched::observe`].
//!
//! A [`RunObserver`] sees everything a [`rbr_sched::SchedObserver`] sees
//! plus the driver's own milestones: each engine event as it is pumped,
//! each synthesized [`JobRecord`], and the final [`RunResult`] — enough
//! for an auditor to cross-check scheduler-level node occupancy against
//! the run's waste/useful-work ledger.
//!
//! Observers attach in one of two ways:
//!
//! * directly, via [`crate::SimDriver::attach_run_observer`], when the
//!   caller builds the driver itself (unit and integration tests);
//! * globally, via [`install_observer_factory`]: every subsequently
//!   constructed driver asks the factory for a fresh observer. This is
//!   how `rbr audit` instruments registry experiments it cannot reach
//!   into. Normal runs have no factory installed and pay nothing.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Mutex;

use rbr_sched::{Request, RequestId, SchedObserver, StartKind};
use rbr_simcore::SimTime;

use crate::record::{JobRecord, RunResult};

/// Driver-level hooks layered over the scheduler-level ones. All default
/// to no-ops.
pub trait RunObserver: SchedObserver {
    /// An engine event was popped and is about to be handled.
    fn on_event(&mut self, now: SimTime, kind: &str) {
        let _ = (now, kind);
    }

    /// A job's record was synthesized (its winning copy completed).
    fn on_job_record(&mut self, rec: &JobRecord) {
        let _ = rec;
    }

    /// The run finished; `result` is final except for per-record
    /// post-processing done by callers.
    fn on_run_end(&mut self, result: &RunResult) {
        let _ = result;
    }
}

/// Adapter presenting a [`RunObserver`] as a [`rbr_sched::SharedObserver`]
/// by delegation (trait-object upcasting is not available on the
/// workspace's minimum Rust version).
pub(crate) struct ObserverAdapter(pub(crate) Rc<RefCell<dyn RunObserver>>);

impl SchedObserver for ObserverAdapter {
    fn on_attach(&mut self, sched: usize, total_nodes: u32, name: &str) {
        self.0.borrow_mut().on_attach(sched, total_nodes, name);
    }
    fn on_submit(&mut self, sched: usize, now: SimTime, queue: usize, req: &Request) {
        self.0.borrow_mut().on_submit(sched, now, queue, req);
    }
    fn on_start(&mut self, sched: usize, now: SimTime, req: &Request, kind: StartKind) {
        self.0.borrow_mut().on_start(sched, now, req, kind);
    }
    fn on_finish(&mut self, sched: usize, now: SimTime, id: RequestId, nodes: u32) {
        self.0.borrow_mut().on_finish(sched, now, id, nodes);
    }
    fn on_cancel(&mut self, sched: usize, now: SimTime, id: RequestId) {
        self.0.borrow_mut().on_cancel(sched, now, id);
    }
    fn on_shadow(
        &mut self,
        sched: usize,
        now: SimTime,
        head: &Request,
        shadow: SimTime,
        extra: u32,
    ) {
        self.0
            .borrow_mut()
            .on_shadow(sched, now, head, shadow, extra);
    }
    fn on_reserve(&mut self, sched: usize, now: SimTime, id: RequestId, start: SimTime) {
        self.0.borrow_mut().on_reserve(sched, now, id, start);
    }
}

/// Creates one observer per driver; must be callable from any thread
/// (experiments replicate runs across a thread pool), though each
/// returned observer stays on the thread that asked for it.
pub type ObserverFactory = Box<dyn Fn() -> Rc<RefCell<dyn RunObserver>> + Send + Sync>;

static FACTORY: Mutex<Option<ObserverFactory>> = Mutex::new(None);

/// Installs a process-wide observer factory: every [`crate::SimDriver`]
/// constructed afterwards attaches a fresh observer from it. Replaces
/// any previously installed factory.
pub fn install_observer_factory(factory: ObserverFactory) {
    *FACTORY.lock().expect("observer factory lock") = Some(factory);
}

/// Removes the process-wide observer factory; subsequent drivers run
/// unobserved.
pub fn clear_observer_factory() {
    *FACTORY.lock().expect("observer factory lock") = None;
}

/// A fresh observer from the installed factory, if any.
pub(crate) fn observer_from_factory() -> Option<Rc<RefCell<dyn RunObserver>>> {
    FACTORY
        .lock()
        .expect("observer factory lock")
        .as_ref()
        .map(|f| f())
}
