//! Grid simulation configuration.

use rbr_faults::FaultSpec;
use rbr_sched::Algorithm;
use rbr_simcore::Duration;
use rbr_workload::{EstimateModel, LublinConfig};

use crate::scheme::Scheme;
use crate::select::SelectionPolicy;

/// One cluster: its size and the workload arriving at it.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterSpec {
    /// Number of compute nodes.
    pub nodes: u32,
    /// Workload model for this cluster's local job stream (its
    /// `max_nodes` is forced to `nodes` when the simulation is built —
    /// "jobs arriving at a cluster do not request more compute nodes than
    /// available at that cluster").
    pub workload: LublinConfig,
}

impl ClusterSpec {
    /// A cluster of `nodes` nodes fed by `workload`.
    pub fn new(nodes: u32, workload: LublinConfig) -> Self {
        ClusterSpec {
            nodes,
            workload: workload.with_max_nodes(nodes),
        }
    }
}

/// Full configuration of one grid simulation run.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct GridConfig {
    /// The clusters of the platform.
    pub clusters: Vec<ClusterSpec>,
    /// Scheduling algorithm used by every batch scheduler.
    pub algorithm: Algorithm,
    /// Redundancy scheme used by redundant jobs.
    pub scheme: Scheme,
    /// Fraction `p ∈ [0, 1]` of jobs that use the scheme (Figure 4 sweeps
    /// this; all other experiments use 1.0).
    pub redundant_fraction: f64,
    /// How redundant jobs pick remote clusters.
    pub selection: SelectionPolicy,
    /// Submission window: jobs arrive during `[0, window)`; the
    /// simulation then runs until every job completes.
    pub window: Duration,
    /// User runtime-estimate model.
    pub estimates: EstimateModel,
    /// Extra requested time on *remote* copies, as a fraction (0.1 = +10%)
    /// — the §3.1.2 late-binding data-staging sensitivity check.
    pub remote_inflation: f64,
    /// Record per-job queue-wait predictions at submit time (Section 5).
    /// Cheap for CBF; for EASY/FCFS it costs a queue walk per request.
    pub collect_predictions: bool,
    /// CBF scheduling-cycle length (see `rbr_sched::CbfScheduler`): full
    /// schedule compression is batched at this granularity, like a
    /// production scheduler's poll interval. Ignored by FCFS/EASY.
    pub cbf_cycle: Duration,
    /// Middleware fault model (message delay/loss, retries, cluster
    /// outages). The default is the paper's perfect middleware; see
    /// `rbr_faults` for the determinism contract.
    pub faults: FaultSpec,
}

impl GridConfig {
    /// The paper's default platform: `n` identical 128-node clusters
    /// running EASY with the calibrated Lublin workload, a 6-hour
    /// submission window, exact estimates, and uniform selection.
    pub fn homogeneous(n: usize, scheme: Scheme) -> Self {
        assert!(n > 0, "a platform needs at least one cluster");
        GridConfig {
            clusters: vec![ClusterSpec::new(128, LublinConfig::paper_2006()); n],
            algorithm: Algorithm::Easy,
            scheme,
            redundant_fraction: 1.0,
            selection: SelectionPolicy::Uniform,
            window: Duration::from_hours(6),
            estimates: EstimateModel::Exact,
            remote_inflation: 0.0,
            collect_predictions: false,
            cbf_cycle: Duration::from_secs(30.0),
            faults: FaultSpec::default(),
        }
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Validates cross-field invariants. Called by the simulation
    /// constructor.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn validate(&self) {
        assert!(!self.clusters.is_empty(), "platform has no clusters");
        assert!(
            (0.0..=1.0).contains(&self.redundant_fraction),
            "redundant fraction must be in [0, 1], got {}",
            self.redundant_fraction
        );
        assert!(
            self.remote_inflation >= 0.0 && self.remote_inflation.is_finite(),
            "remote inflation must be non-negative, got {}",
            self.remote_inflation
        );
        assert!(!self.window.is_zero(), "submission window must be positive");
        self.faults.validate(self.clusters.len());
        for (i, c) in self.clusters.iter().enumerate() {
            assert!(c.nodes > 0, "cluster {i} has no nodes");
            assert_eq!(
                c.workload.max_nodes, c.nodes,
                "cluster {i}: workload max_nodes must equal cluster size"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_defaults_match_paper() {
        let cfg = GridConfig::homogeneous(10, Scheme::Half);
        assert_eq!(cfg.n_clusters(), 10);
        assert!(cfg.clusters.iter().all(|c| c.nodes == 128));
        assert_eq!(cfg.algorithm, Algorithm::Easy);
        assert_eq!(cfg.window, Duration::from_hours(6));
        assert_eq!(cfg.redundant_fraction, 1.0);
        cfg.validate();
    }

    #[test]
    fn cluster_spec_caps_workload_nodes() {
        let spec = ClusterSpec::new(16, LublinConfig::paper_2006());
        assert_eq!(spec.workload.max_nodes, 16);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn invalid_fraction_rejected() {
        let mut cfg = GridConfig::homogeneous(2, Scheme::All);
        cfg.redundant_fraction = 1.5;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "no clusters")]
    fn empty_platform_rejected() {
        let cfg = GridConfig {
            clusters: vec![],
            ..GridConfig::homogeneous(1, Scheme::None)
        };
        cfg.validate();
    }
}
