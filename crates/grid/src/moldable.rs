//! Option (iv) of Section 2: redundant requests *for different numbers of
//! nodes* sent to a single batch queue, expressed as a
//! [`SubmissionProtocol`] over the shared [`SimDriver`] event loop.
//!
//! "Option (iv) can be useful for 'moldable' jobs that can accommodate
//! various numbers of compute nodes... Typically, a larger number will
//! lead to a longer queue waiting time and to a shorter execution time...
//! One approach is then to send redundant requests for different numbers
//! of nodes." The paper defers this option to future work while
//! conjecturing that its findings carry over; this module implements it.
//!
//! A moldable job scales by Amdahl's law: on `n` nodes it runs
//! `seq · ((1 − f) + f/n)` where `f` is its parallel fraction. A
//! redundant submission places one request per candidate shape into the
//! same queue; the first to start wins and the rest are cancelled
//! through the usual zero-latency callback. Each copy's [`CopyPlan`]
//! carries its own `(nodes, runtime)` pair — the one place the shared
//! driver's per-copy plans genuinely differ within a job.

use rand::rngs::StdRng;
use rand::Rng as _;
use rbr_sched::{Algorithm, ClusterSet, SchedulerSet};
use rbr_simcore::{unit, Duration, SeedSequence, SimTime};
use rbr_stats::Summary;
use rbr_workload::{LublinConfig, LublinModel};

use crate::driver::{CopyPlan, SimDriver, SubmissionProtocol};
use crate::record::RunResult;

/// A job that can run on any of several node counts.
#[derive(Clone, Debug, PartialEq)]
pub struct MoldableJob {
    /// Submission instant.
    pub arrival: SimTime,
    /// Runtime on a single node.
    pub sequential: Duration,
    /// Amdahl parallel fraction `f ∈ [0, 1]`.
    pub parallel_fraction: f64,
    /// Candidate node counts, ascending.
    pub shapes: Vec<u32>,
}

impl MoldableJob {
    /// Runtime on `nodes` nodes under Amdahl's law.
    pub fn runtime(&self, nodes: u32) -> Duration {
        assert!(nodes >= 1, "a shape needs at least one node");
        let f = self.parallel_fraction;
        let factor = (1.0 - f) + f / nodes as f64;
        self.sequential.scale(factor).max(Duration::from_micros(1))
    }

    /// The shortest achievable runtime (the widest shape).
    pub fn best_runtime(&self) -> Duration {
        self.runtime(*self.shapes.last().expect("shapes are non-empty"))
    }
}

/// How the user submits a moldable job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapePolicy {
    /// One request at the given index into `shapes` (a rigid user who
    /// always picks the same shape).
    Fixed(usize),
    /// One redundant request per shape; first to start wins.
    AllShapes,
}

/// Configuration of the single-cluster moldable experiment.
#[derive(Clone, Debug)]
pub struct MoldableConfig {
    /// Cluster size.
    pub nodes: u32,
    /// Scheduling algorithm.
    pub algorithm: Algorithm,
    /// Submission policy.
    pub policy: ShapePolicy,
    /// Submission window.
    pub window: Duration,
    /// Candidate shapes offered to every job (ascending powers of two
    /// capped by the machine).
    pub shapes: Vec<u32>,
}

impl MoldableConfig {
    /// Default setup: a 128-node EASY cluster with shapes 1–64.
    pub fn new(policy: ShapePolicy) -> Self {
        MoldableConfig {
            nodes: 128,
            algorithm: Algorithm::Easy,
            policy,
            window: Duration::from_hours(1),
            shapes: vec![1, 4, 16, 64],
        }
    }
}

/// Result of a moldable run: the unified [`RunResult`] plus the job
/// table needed for shape-aware normalization.
#[derive(Clone, Debug)]
pub struct MoldableResult {
    /// The full run; each record's `nodes`/`runtime` are those of the
    /// winning shape.
    pub run: RunResult,
    /// The moldable jobs, indexed like `run.records`.
    pub jobs: Vec<MoldableJob>,
}

impl MoldableResult {
    /// Summary of normalized stretches: turnaround ÷ best achievable
    /// runtime — comparable across policies because the denominator does
    /// not depend on the shape the policy picked.
    pub fn normalized_stretch(&self) -> Summary {
        let mut s = Summary::new();
        for r in &self.run.records {
            s.push(r.turnaround() / self.jobs[r.job].best_runtime());
        }
        s
    }

    /// Summary of turnaround times in seconds.
    pub fn turnaround(&self) -> Summary {
        let mut s = Summary::new();
        for r in &self.run.records {
            s.push(r.turnaround().as_secs());
        }
        s
    }

    /// Mean nodes used per job.
    pub fn mean_nodes(&self) -> f64 {
        self.run.records.iter().map(|r| r.nodes as f64).sum::<f64>()
            / self.run.records.len().max(1) as f64
    }
}

/// Generates a moldable workload from the calibrated rigid model: the
/// rigid sample's node-seconds become the sequential work, and the
/// parallel fraction is drawn from U(0.80, 0.99).
pub fn generate_jobs(config: &MoldableConfig, seed: SeedSequence) -> Vec<MoldableJob> {
    let model = LublinModel::new(LublinConfig::paper_2006().with_max_nodes(config.nodes));
    let mut rng = seed.rng();
    let mut jobs = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        t += model.sample_interarrival(&mut rng);
        if t.since(SimTime::ZERO) >= config.window {
            return jobs;
        }
        let nodes = model.sample_nodes(&mut rng);
        let runtime = model.sample_runtime(&mut rng, nodes);
        // Sequential work equivalent to the rigid job's area, so the
        // offered load matches the calibrated model.
        let sequential = runtime.scale(nodes as f64);
        let f = 0.80 + 0.19 * unit(&mut rng);
        jobs.push(MoldableJob {
            arrival: t,
            sequential,
            parallel_fraction: f,
            shapes: config.shapes.clone(),
        });
    }
}

/// The moldable placement policy: one copy per candidate shape (or one
/// fixed shape), all racing in the same queue.
struct Moldable {
    jobs: Vec<MoldableJob>,
    policy: ShapePolicy,
    max_nodes: u32,
    /// Shuffle buffer for the per-job submission order, reused across
    /// jobs.
    order: Vec<usize>,
}

impl Moldable {
    fn plan(&self, job: usize, shape_idx: usize) -> CopyPlan {
        let j = &self.jobs[job];
        let nodes = j.shapes[shape_idx].min(self.max_nodes);
        let runtime = j.runtime(nodes);
        CopyPlan {
            target: 0,
            nodes,
            estimate: runtime,
            runtime,
        }
    }
}

impl SubmissionProtocol for Moldable {
    fn name(&self) -> &'static str {
        "moldable"
    }

    fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    fn arrival(&self, job: usize) -> SimTime {
        self.jobs[job].arrival
    }

    fn home(&self, _job: usize) -> usize {
        0
    }

    /// Redundant copies are submitted in a random per-job order:
    /// submission order is also queue order, and a deterministic order
    /// degenerates (a narrow-first user always wins with the narrow
    /// shape on any free node; a wide-first user saturates an idle
    /// machine with wide allocations). Random order models a user who
    /// has no reason to prefer one `qsub` ordering over another and lets
    /// the queue state decide.
    fn place_into(
        &mut self,
        job: usize,
        _now: SimTime,
        rng: &mut StdRng,
        _scheds: &dyn SchedulerSet,
        out: &mut Vec<CopyPlan>,
    ) {
        let n_shapes = self.jobs[job].shapes.len();
        self.order.clear();
        match self.policy {
            ShapePolicy::Fixed(i) => self.order.push(i.min(n_shapes - 1)),
            ShapePolicy::AllShapes => {
                self.order.extend(0..n_shapes);
                // Fisher–Yates with the run's order stream.
                for k in (1..self.order.len()).rev() {
                    let j = (rng.next_u64() % (k as u64 + 1)) as usize;
                    self.order.swap(k, j);
                }
            }
        }
        for idx in 0..self.order.len() {
            out.push(self.plan(job, self.order[idx]));
        }
    }
}

/// Runs the experiment: one cluster, every job submitted per the policy.
///
/// Stream `seed.child(0)` drives the workload; `seed.child(1)` drives
/// the per-job shape-submission order.
pub fn run(config: &MoldableConfig, seed: SeedSequence) -> MoldableResult {
    let jobs = generate_jobs(config, seed.child(0));
    let protocol = Moldable {
        jobs: jobs.clone(),
        policy: config.policy,
        max_nodes: config.nodes,
        order: Vec::new(),
    };
    let scheds = ClusterSet::new(config.algorithm, Duration::from_secs(30.0), &[config.nodes]);
    let driver = SimDriver::new(protocol, Box::new(scheds), seed.child(1).rng(), None, false);
    MoldableResult {
        run: driver.run(),
        jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_runtime_decreases_with_nodes() {
        let job = MoldableJob {
            arrival: SimTime::ZERO,
            sequential: Duration::from_secs(1_000.0),
            parallel_fraction: 0.9,
            shapes: vec![1, 4, 16, 64],
        };
        assert_eq!(job.runtime(1), Duration::from_secs(1_000.0));
        let r4 = job.runtime(4);
        let r64 = job.runtime(64);
        assert!(r4 < job.runtime(1));
        assert!(r64 < r4);
        // Amdahl floor: the serial part never parallelizes.
        assert!(r64 >= Duration::from_secs(100.0));
        assert_eq!(job.best_runtime(), r64);
    }

    #[test]
    fn generated_jobs_share_arrivals_across_policies() {
        let fixed = MoldableConfig::new(ShapePolicy::Fixed(1));
        let all = MoldableConfig::new(ShapePolicy::AllShapes);
        let a = generate_jobs(&fixed, SeedSequence::new(60));
        let b = generate_jobs(&all, SeedSequence::new(60));
        assert_eq!(a, b, "workload must be policy-independent");
        assert!(!a.is_empty());
    }

    #[test]
    fn all_policies_complete_every_job() {
        for policy in [
            ShapePolicy::Fixed(0),
            ShapePolicy::Fixed(3),
            ShapePolicy::AllShapes,
        ] {
            let mut cfg = MoldableConfig::new(policy);
            cfg.window = Duration::from_secs(900.0);
            let result = run(&cfg, SeedSequence::new(61));
            assert!(!result.run.records.is_empty(), "{policy:?}");
            let stretches = result.normalized_stretch();
            assert!(stretches.min() >= 1.0 - 1e-9, "{policy:?}");
            for r in &result.run.records {
                assert!(cfg.shapes.contains(&r.nodes));
                assert_eq!(r.completion, r.start + r.runtime);
                assert_eq!(
                    r.redundant,
                    policy == ShapePolicy::AllShapes,
                    "redundancy class tracks the policy"
                );
            }
        }
    }

    #[test]
    fn unified_metrics_come_for_free() {
        let mut cfg = MoldableConfig::new(ShapePolicy::AllShapes);
        cfg.window = Duration::from_secs(900.0);
        let result = run(&cfg, SeedSequence::new(61));
        // Perfect middleware: the shape race never wastes node-time.
        assert_eq!(result.run.zombie_starts, 0);
        assert_eq!(result.run.wasted_node_secs, 0.0);
        assert_eq!(result.run.pool_nodes, vec![cfg.nodes]);
        let u = result.run.overall_utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn all_shapes_beats_the_worst_fixed_choice() {
        // The option-(iv) hypothesis: redundant shape requests should not
        // lose to the worst rigid choice.
        let mut worst = f64::NEG_INFINITY;
        for i in 0..4 {
            let mut cfg = MoldableConfig::new(ShapePolicy::Fixed(i));
            cfg.window = Duration::from_secs(1_800.0);
            let t = run(&cfg, SeedSequence::new(62)).turnaround().mean();
            worst = worst.max(t);
        }
        let mut cfg = MoldableConfig::new(ShapePolicy::AllShapes);
        cfg.window = Duration::from_secs(1_800.0);
        let redundant = run(&cfg, SeedSequence::new(62)).turnaround().mean();
        assert!(
            redundant <= worst,
            "AllShapes {redundant} vs worst fixed {worst}"
        );
    }

    #[test]
    fn redundant_shapes_use_narrower_allocations_when_queues_build() {
        let mut cfg = MoldableConfig::new(ShapePolicy::AllShapes);
        cfg.window = Duration::from_secs(1_800.0);
        let result = run(&cfg, SeedSequence::new(63));
        // Not every job can win with its widest shape on a busy machine.
        assert!(result.mean_nodes() < 64.0);
    }
}
