//! Option (iv) of Section 2: redundant requests *for different numbers of
//! nodes* sent to a single batch queue.
//!
//! "Option (iv) can be useful for 'moldable' jobs that can accommodate
//! various numbers of compute nodes... Typically, a larger number will
//! lead to a longer queue waiting time and to a shorter execution time...
//! One approach is then to send redundant requests for different numbers
//! of nodes." The paper defers this option to future work while
//! conjecturing that its findings carry over; this module implements it.
//!
//! A moldable job scales by Amdahl's law: on `n` nodes it runs
//! `seq · ((1 − f) + f/n)` where `f` is its parallel fraction. A
//! redundant submission places one request per candidate shape into the
//! same queue; the first to start wins and the rest are cancelled
//! through the usual zero-latency callback.

use rand::Rng as _;
use rbr_sched::{Algorithm, Request, RequestId, Scheduler};
use rbr_simcore::{unit, Duration, Engine, SeedSequence, SimTime};
use rbr_stats::Summary;
use rbr_workload::{LublinConfig, LublinModel};

/// A job that can run on any of several node counts.
#[derive(Clone, Debug, PartialEq)]
pub struct MoldableJob {
    /// Submission instant.
    pub arrival: SimTime,
    /// Runtime on a single node.
    pub sequential: Duration,
    /// Amdahl parallel fraction `f ∈ [0, 1]`.
    pub parallel_fraction: f64,
    /// Candidate node counts, ascending.
    pub shapes: Vec<u32>,
}

impl MoldableJob {
    /// Runtime on `nodes` nodes under Amdahl's law.
    pub fn runtime(&self, nodes: u32) -> Duration {
        assert!(nodes >= 1, "a shape needs at least one node");
        let f = self.parallel_fraction;
        let factor = (1.0 - f) + f / nodes as f64;
        self.sequential.scale(factor).max(Duration::from_micros(1))
    }

    /// The shortest achievable runtime (the widest shape).
    pub fn best_runtime(&self) -> Duration {
        self.runtime(*self.shapes.last().expect("shapes are non-empty"))
    }
}

/// How the user submits a moldable job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapePolicy {
    /// One request at the given index into `shapes` (a rigid user who
    /// always picks the same shape).
    Fixed(usize),
    /// One redundant request per shape; first to start wins.
    AllShapes,
}

/// Configuration of the single-cluster moldable experiment.
#[derive(Clone, Debug)]
pub struct MoldableConfig {
    /// Cluster size.
    pub nodes: u32,
    /// Scheduling algorithm.
    pub algorithm: Algorithm,
    /// Submission policy.
    pub policy: ShapePolicy,
    /// Submission window.
    pub window: Duration,
    /// Candidate shapes offered to every job (ascending powers of two
    /// capped by the machine).
    pub shapes: Vec<u32>,
}

impl MoldableConfig {
    /// Default setup: a 128-node EASY cluster with shapes 1–64.
    pub fn new(policy: ShapePolicy) -> Self {
        MoldableConfig {
            nodes: 128,
            algorithm: Algorithm::Easy,
            policy,
            window: Duration::from_hours(1),
            shapes: vec![1, 4, 16, 64],
        }
    }
}

/// Per-job outcome of a moldable run.
#[derive(Clone, Copy, Debug)]
pub struct MoldableRecord {
    /// Shape that actually ran.
    pub nodes: u32,
    /// Queue wait.
    pub wait: Duration,
    /// Actual runtime at the chosen shape.
    pub runtime: Duration,
    /// Turnaround ÷ best achievable runtime — comparable across
    /// policies because the denominator does not depend on the shape the
    /// policy picked.
    pub normalized_stretch: f64,
}

/// Result of a moldable run.
#[derive(Clone, Debug, Default)]
pub struct MoldableResult {
    /// One record per job.
    pub records: Vec<MoldableRecord>,
}

impl MoldableResult {
    /// Summary of normalized stretches.
    pub fn normalized_stretch(&self) -> Summary {
        Summary::of(
            &self
                .records
                .iter()
                .map(|r| r.normalized_stretch)
                .collect::<Vec<_>>(),
        )
    }

    /// Summary of turnaround times in seconds.
    pub fn turnaround(&self) -> Summary {
        Summary::of(
            &self
                .records
                .iter()
                .map(|r| (r.wait + r.runtime).as_secs())
                .collect::<Vec<_>>(),
        )
    }

    /// Mean nodes used per job.
    pub fn mean_nodes(&self) -> f64 {
        self.records.iter().map(|r| r.nodes as f64).sum::<f64>()
            / self.records.len().max(1) as f64
    }
}

/// Generates a moldable workload from the calibrated rigid model: the
/// rigid sample's node-seconds become the sequential work, and the
/// parallel fraction is drawn from U(0.80, 0.99).
pub fn generate_jobs(config: &MoldableConfig, seed: SeedSequence) -> Vec<MoldableJob> {
    let model = LublinModel::new(LublinConfig::paper_2006().with_max_nodes(config.nodes));
    let mut rng = seed.rng();
    let mut jobs = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        t += model.sample_interarrival(&mut rng);
        if t.since(SimTime::ZERO) >= config.window {
            return jobs;
        }
        let nodes = model.sample_nodes(&mut rng);
        let runtime = model.sample_runtime(&mut rng, nodes);
        // Sequential work equivalent to the rigid job's area, so the
        // offered load matches the calibrated model.
        let sequential = runtime.scale(nodes as f64);
        let f = 0.80 + 0.19 * unit(&mut rng);
        jobs.push(MoldableJob {
            arrival: t,
            sequential,
            parallel_fraction: f,
            shapes: config.shapes.clone(),
        });
    }
}

/// Runs the experiment: one cluster, every job submitted per the policy.
///
/// Redundant copies are submitted in a random per-job order: submission
/// order is also queue order, and a deterministic order degenerates (a
/// narrow-first user always wins with the narrow shape on any free node;
/// a wide-first user saturates an idle machine with wide allocations).
/// Random order models a user who has no reason to prefer one `qsub`
/// ordering over another and lets the queue state decide.
pub fn run(config: &MoldableConfig, seed: SeedSequence) -> MoldableResult {
    let jobs = generate_jobs(config, seed.child(0));
    let mut order_rng = seed.child(1).rng();
    let mut sched = config.algorithm.build_with_cycle(config.nodes, Duration::from_secs(30.0));

    let mut engine: Engine<Ev> = Engine::new();
    for (j, job) in jobs.iter().enumerate() {
        engine.schedule(job.arrival, Ev::Submit(j));
    }

    // Request id encoding: job index × stride + shape index.
    let stride = config.shapes.len() as u64;
    let mut started: Vec<Option<(u32, SimTime)>> = vec![None; jobs.len()];
    let mut records: Vec<Option<MoldableRecord>> = vec![None; jobs.len()];
    let mut scratch: Vec<RequestId> = Vec::new();
    let mut worklist: Vec<RequestId> = Vec::new();

    while let Some((now, ev)) = engine.pop() {
        scratch.clear();
        match ev {
            Ev::Submit(j) => {
                let job = &jobs[j];
                let indices: Vec<usize> = match config.policy {
                    ShapePolicy::Fixed(i) => vec![i.min(job.shapes.len() - 1)],
                    ShapePolicy::AllShapes => {
                        let mut order: Vec<usize> = (0..job.shapes.len()).collect();
                        // Fisher–Yates with the run's order stream.
                        for k in (1..order.len()).rev() {
                            let j = (order_rng.next_u64() % (k as u64 + 1)) as usize;
                            order.swap(k, j);
                        }
                        order
                    }
                };
                for i in indices {
                    if started[j].is_some() {
                        break; // callback already fired
                    }
                    let nodes = job.shapes[i].min(config.nodes);
                    let req = Request::new(
                        RequestId(j as u64 * stride + i as u64),
                        nodes,
                        job.runtime(nodes),
                        now,
                    );
                    sched.submit(now, req, &mut scratch);
                    worklist.append(&mut scratch);
                    drain(
                        &mut worklist,
                        &mut sched,
                        &mut engine,
                        &jobs,
                        stride,
                        &mut started,
                        now,
                    );
                }
            }
            Ev::Complete(rid) => {
                let j = (rid / stride) as usize;
                let shape_idx = (rid % stride) as usize;
                let job = &jobs[j];
                let (nodes, start) = started[j].expect("completing job started");
                debug_assert_eq!(nodes, job.shapes[shape_idx].min(config.nodes));
                let runtime = job.runtime(nodes);
                records[j] = Some(MoldableRecord {
                    nodes,
                    wait: start.since(job.arrival),
                    runtime,
                    normalized_stretch: (start.since(job.arrival) + runtime)
                        / job.best_runtime(),
                });
                sched.complete(now, RequestId(rid), &mut scratch);
                worklist.append(&mut scratch);
                drain(
                    &mut worklist,
                    &mut sched,
                    &mut engine,
                    &jobs,
                    stride,
                    &mut started,
                    now,
                );
            }
        }
    }

    MoldableResult {
        records: records
            .into_iter()
            .enumerate()
            .map(|(j, r)| r.unwrap_or_else(|| panic!("moldable job {j} never completed")))
            .collect(),
    }
}

/// Engine events of the moldable run.
#[derive(Clone, Copy)]
enum Ev {
    /// A moldable job arrives.
    Submit(usize),
    /// A started shape finishes (encoded request id).
    Complete(u64),
}

/// Commits starts: winner runs, sibling shapes are cancelled, same-instant
/// losers are aborted.
fn drain(
    worklist: &mut Vec<RequestId>,
    sched: &mut Box<dyn Scheduler>,
    engine: &mut Engine<Ev>,
    jobs: &[MoldableJob],
    stride: u64,
    started: &mut [Option<(u32, SimTime)>],
    now: SimTime,
) {
    let mut scratch = Vec::new();
    while let Some(rid) = worklist.pop() {
        let j = (rid.0 / stride) as usize;
        let shape_idx = (rid.0 % stride) as usize;
        if started[j].is_some() {
            scratch.clear();
            sched.abort(now, rid, &mut scratch);
            worklist.append(&mut scratch);
            continue;
        }
        let job = &jobs[j];
        let nodes = job.shapes[shape_idx].min(sched.total_nodes());
        started[j] = Some((nodes, now));
        engine.schedule(now + job.runtime(nodes), Ev::Complete(rid.0));
        // Cancel sibling shapes.
        for i in 0..job.shapes.len() as u64 {
            let sibling = RequestId(j as u64 * stride + i);
            if sibling != rid {
                scratch.clear();
                sched.cancel(now, sibling, &mut scratch);
                worklist.append(&mut scratch);
            }
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_runtime_decreases_with_nodes() {
        let job = MoldableJob {
            arrival: SimTime::ZERO,
            sequential: Duration::from_secs(1_000.0),
            parallel_fraction: 0.9,
            shapes: vec![1, 4, 16, 64],
        };
        assert_eq!(job.runtime(1), Duration::from_secs(1_000.0));
        let r4 = job.runtime(4);
        let r64 = job.runtime(64);
        assert!(r4 < job.runtime(1));
        assert!(r64 < r4);
        // Amdahl floor: the serial part never parallelizes.
        assert!(r64 >= Duration::from_secs(100.0));
        assert_eq!(job.best_runtime(), r64);
    }

    #[test]
    fn generated_jobs_share_arrivals_across_policies() {
        let fixed = MoldableConfig::new(ShapePolicy::Fixed(1));
        let all = MoldableConfig::new(ShapePolicy::AllShapes);
        let a = generate_jobs(&fixed, SeedSequence::new(60));
        let b = generate_jobs(&all, SeedSequence::new(60));
        assert_eq!(a, b, "workload must be policy-independent");
        assert!(!a.is_empty());
    }

    #[test]
    fn all_policies_complete_every_job() {
        for policy in [
            ShapePolicy::Fixed(0),
            ShapePolicy::Fixed(3),
            ShapePolicy::AllShapes,
        ] {
            let mut cfg = MoldableConfig::new(policy);
            cfg.window = Duration::from_secs(900.0);
            let result = run(&cfg, SeedSequence::new(61));
            assert!(!result.records.is_empty(), "{policy:?}");
            for r in &result.records {
                assert!(r.normalized_stretch >= 1.0 - 1e-9);
                assert!(cfg.shapes.contains(&r.nodes));
            }
        }
    }

    #[test]
    fn all_shapes_beats_the_worst_fixed_choice() {
        // The option-(iv) hypothesis: redundant shape requests should not
        // lose to the worst rigid choice.
        let mut worst = f64::NEG_INFINITY;
        for i in 0..4 {
            let mut cfg = MoldableConfig::new(ShapePolicy::Fixed(i));
            cfg.window = Duration::from_secs(1_800.0);
            let t = run(&cfg, SeedSequence::new(62)).turnaround().mean();
            worst = worst.max(t);
        }
        let mut cfg = MoldableConfig::new(ShapePolicy::AllShapes);
        cfg.window = Duration::from_secs(1_800.0);
        let redundant = run(&cfg, SeedSequence::new(62)).turnaround().mean();
        assert!(
            redundant <= worst,
            "AllShapes {redundant} vs worst fixed {worst}"
        );
    }

    #[test]
    fn redundant_shapes_use_narrower_allocations_when_queues_build() {
        let mut cfg = MoldableConfig::new(ShapePolicy::AllShapes);
        cfg.window = Duration::from_secs(1_800.0);
        let result = run(&cfg, SeedSequence::new(63));
        // Not every job can win with its widest shape on a busy machine.
        assert!(result.mean_nodes() < 64.0);
    }
}
