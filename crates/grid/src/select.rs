//! Remote-cluster selection policies.
//!
//! The paper's default "merely reflects the fact that different users have
//! accounts on different clusters": remote targets are drawn uniformly at
//! random. Table 2 repeats the experiment with a heavily biased
//! (geometric) account distribution. The least-loaded policy reproduces
//! the metascheduler behaviour of the related work (Subramani et al.) as
//! a comparison baseline.

use rand::Rng;
use rbr_simcore::unit;

/// How a redundant job picks its remote clusters.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SelectionPolicy {
    /// Uniformly at random among eligible remote clusters.
    Uniform,
    /// Geometrically biased by cluster index: cluster `C₁` is `ratio`
    /// times as likely as `C₂`, which is `ratio` times as likely as `C₃`,
    /// and so on (the paper's Table 2 uses `ratio = 2`).
    Biased {
        /// Successive likelihood ratio (> 1 biases towards low-index
        /// clusters).
        ratio: f64,
    },
    /// The metascheduler baseline: pick the eligible clusters with the
    /// shortest batch queues (ties broken by cluster index).
    LeastLoaded,
}

/// Reusable buffers for [`SelectionPolicy::choose_into`]. Selection runs
/// once per redundant job, so the driver-side protocols keep one of these
/// alive for the whole run instead of allocating per call.
#[derive(Clone, Debug, Default)]
pub struct SelectionScratch {
    pool: Vec<usize>,
    weights: Vec<f64>,
}

impl SelectionPolicy {
    /// Chooses up to `k` distinct clusters from `eligible` (global cluster
    /// indices). `queue_lens[c]` is the current queue length of cluster
    /// `c`, used only by `LeastLoaded`.
    ///
    /// Returns fewer than `k` targets when fewer clusters are eligible.
    pub fn choose<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        eligible: &[usize],
        k: usize,
        queue_lens: &[usize],
    ) -> Vec<usize> {
        let mut out = Vec::new();
        self.choose_into(
            rng,
            eligible,
            k,
            queue_lens,
            &mut SelectionScratch::default(),
            &mut out,
        );
        out
    }

    /// [`SelectionPolicy::choose`] without per-call allocation: chosen
    /// clusters are appended to `out` (draw sequence and result order are
    /// identical to `choose`).
    pub fn choose_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        eligible: &[usize],
        k: usize,
        queue_lens: &[usize],
        scratch: &mut SelectionScratch,
        out: &mut Vec<usize>,
    ) {
        let k = k.min(eligible.len());
        if k == 0 {
            return;
        }
        match *self {
            SelectionPolicy::Uniform => {
                weighted_without_replacement(rng, eligible, k, |_| 1.0, scratch, out)
            }
            SelectionPolicy::Biased { ratio } => {
                assert!(
                    ratio.is_finite() && ratio > 0.0,
                    "bias ratio must be positive, got {ratio}"
                );
                // Weight 1/ratio^index, normalized implicitly.
                weighted_without_replacement(
                    rng,
                    eligible,
                    k,
                    |c| ratio.powi(-(c as i32)),
                    scratch,
                    out,
                )
            }
            SelectionPolicy::LeastLoaded => {
                scratch.pool.clear();
                scratch.pool.extend_from_slice(eligible);
                scratch
                    .pool
                    .sort_by_key(|&c| (queue_lens.get(c).copied().unwrap_or(usize::MAX), c));
                out.extend_from_slice(&scratch.pool[..k]);
            }
        }
    }
}

/// Weighted sampling of `k` distinct items by sequential draws, appended
/// to `out`.
fn weighted_without_replacement<R: Rng + ?Sized>(
    rng: &mut R,
    items: &[usize],
    k: usize,
    weight: impl Fn(usize) -> f64,
    scratch: &mut SelectionScratch,
    out: &mut Vec<usize>,
) {
    let SelectionScratch { pool, weights } = scratch;
    pool.clear();
    pool.extend_from_slice(items);
    weights.clear();
    weights.extend(items.iter().map(|&c| weight(c)));
    for _ in 0..k {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "selection weights summed to zero");
        let mut x = unit(rng) * total;
        let mut idx = pool.len() - 1; // fall back to last under rounding
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                idx = i;
                break;
            }
            x -= w;
        }
        out.push(pool.swap_remove(idx));
        weights.swap_remove(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::SeedSequence;

    #[test]
    fn uniform_returns_distinct_targets() {
        let mut rng = SeedSequence::new(60).rng();
        let eligible: Vec<usize> = (0..10).collect();
        for _ in 0..1000 {
            let picks = SelectionPolicy::Uniform.choose(&mut rng, &eligible, 4, &[]);
            assert_eq!(picks.len(), 4);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicate target in {picks:?}");
        }
    }

    #[test]
    fn k_capped_by_eligible_count() {
        let mut rng = SeedSequence::new(61).rng();
        let picks = SelectionPolicy::Uniform.choose(&mut rng, &[3, 7], 5, &[]);
        assert_eq!(picks.len(), 2);
        assert!(SelectionPolicy::Uniform
            .choose(&mut rng, &[], 3, &[])
            .is_empty());
    }

    #[test]
    fn uniform_is_roughly_balanced() {
        let mut rng = SeedSequence::new(62).rng();
        let eligible: Vec<usize> = (0..5).collect();
        let mut counts = [0u32; 5];
        let n = 50_000;
        for _ in 0..n {
            for c in SelectionPolicy::Uniform.choose(&mut rng, &eligible, 1, &[]) {
                counts[c] += 1;
            }
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.01, "fraction {frac}");
        }
    }

    #[test]
    fn biased_prefers_low_indices_geometrically() {
        let mut rng = SeedSequence::new(63).rng();
        let eligible: Vec<usize> = (0..8).collect();
        let mut counts = [0u32; 8];
        let n = 200_000;
        let policy = SelectionPolicy::Biased { ratio: 2.0 };
        for _ in 0..n {
            for c in policy.choose(&mut rng, &eligible, 1, &[]) {
                counts[c] += 1;
            }
        }
        // P(C_i) should be ≈ 2 × P(C_{i+1}).
        for i in 0..6 {
            let ratio = counts[i] as f64 / counts[i + 1] as f64;
            assert!(
                (1.8..2.2).contains(&ratio),
                "cluster {i} vs {}: ratio {ratio}",
                i + 1
            );
        }
    }

    #[test]
    fn least_loaded_picks_shortest_queues() {
        let mut rng = SeedSequence::new(64).rng();
        let queue_lens = vec![9, 2, 7, 0, 5];
        let picks = SelectionPolicy::LeastLoaded.choose(&mut rng, &[0, 1, 2, 3, 4], 2, &queue_lens);
        assert_eq!(picks, vec![3, 1]);
    }

    #[test]
    fn least_loaded_breaks_ties_by_index() {
        let mut rng = SeedSequence::new(65).rng();
        let queue_lens = vec![1, 1, 1];
        let picks = SelectionPolicy::LeastLoaded.choose(&mut rng, &[2, 0, 1], 2, &queue_lens);
        assert_eq!(picks, vec![0, 1]);
    }
}
