//! Redundancy-d over homogeneous servers: the post-2006 stability
//! model, as a [`SubmissionProtocol`] over the shared [`SimDriver`].
//!
//! The source paper shows redundant batch requests are harmful
//! qualitatively; the follow-on literature (Gardner et al.'s
//! redundancy-d, Shah/Lee/Ramchandran's "When Do Redundant Requests
//! Reduce Latency?", and the Anton/Ayesta/Jonckheere/Verloop stability
//! survey) makes that quantitative with a cleaner queueing model: jobs
//! arrive Poisson(λ) at a dispatcher, each sends a copy to `d` of `K`
//! homogeneous FCFS servers, and the first copy to *complete* wins while
//! the losers are cancelled ([`CancelMode::OnCompletion`]). Whether
//! redundancy enlarges or shrinks the stability region then hinges on
//! how the copies' service times relate — the [`CopyModel`] axis:
//!
//! * [`CopyModel::Iid`] — each copy draws its own exponential service
//!   time. Racing copies genuinely hedge (the winner's service is the
//!   *minimum* of the started copies), and the stability region stays at
//!   λ < Kμ — redundancy can only help.
//! * [`CopyModel::Identical`] — every copy carries the same draw. The
//!   race hedges nothing: losers burn full duplicate service, and the
//!   stability region shrinks toward λ < Kμ/d.
//! * [`CopyModel::Correlated`] — `X_i = ρ·S + (1−ρ)·E_i`, a shared plus
//!   an independent component that interpolates between the two (the
//!   mean is ρ-invariant, so offered load is comparable across ρ).
//!
//! Every random stream lives on its own [`SeedSequence`] child —
//! arrivals, the shared draw, the independent draws, the d-of-K server
//! selection — so switching cancel mode or copy model at a fixed seed
//! never shifts any other stream: the cells of a stability sweep are
//! exactly paired, and each mode is bit-deterministic.
//!
//! [`run_single`] is the no-redundancy baseline (one copy to one
//! uniformly random server) against which `d = 1` is locked bitwise.

use rand::rngs::StdRng;
use rand::Rng as _;
use rbr_dist::{Exponential, Sample as _};
use rbr_faults::{FaultModel, FaultSpec};
use rbr_sched::{Algorithm, ClusterSet, SchedulerSet};
use rbr_simcore::{Duration, SeedSequence, SimTime};

use crate::driver::{CancelMode, CopyPlan, SimDriver, SubmissionProtocol};
use crate::record::RunResult;

/// How a job's `d` copies' service times relate to each other.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CopyModel {
    /// Every copy carries the same service draw: duplicated work, the
    /// survey's stability-shrinking regime.
    Identical,
    /// Every copy draws independently: racing genuinely hedges.
    Iid,
    /// `X_i = ρ·S + (1−ρ)·E_i`: a shared component `S` plus an
    /// independent component `E_i`, both exponential with the configured
    /// mean, so the copy mean is invariant in `ρ`. `ρ = 0` degenerates
    /// to [`CopyModel::Iid`], `ρ = 1` to [`CopyModel::Identical`].
    Correlated {
        /// Weight of the shared component, in `[0, 1]`.
        rho: f64,
    },
}

impl CopyModel {
    /// Weight of the shared service component.
    fn shared_weight(self) -> f64 {
        match self {
            CopyModel::Identical => 1.0,
            CopyModel::Iid => 0.0,
            CopyModel::Correlated { rho } => rho,
        }
    }

    /// Short display label (`identical` / `iid` / `corr(0.50)`).
    pub fn label(self) -> String {
        match self {
            CopyModel::Identical => "identical".to_string(),
            CopyModel::Iid => "iid".to_string(),
            CopyModel::Correlated { rho } => format!("corr({rho:.2})"),
        }
    }
}

/// Configuration of a redundancy-d run.
#[derive(Clone, Debug)]
pub struct RedundancyConfig {
    /// Number of homogeneous servers `K`.
    pub servers: usize,
    /// Nodes per server (1 = classic single-server queues).
    pub server_nodes: u32,
    /// Copies per job `d` (1 ≤ d ≤ K); each goes to a distinct server.
    pub d: usize,
    /// When losing copies are cancelled.
    pub cancel: CancelMode,
    /// How the copies' service times relate.
    pub copies: CopyModel,
    /// Aggregate Poisson arrival rate λ, jobs per second.
    pub arrival_rate: f64,
    /// Mean service time `1/μ` in seconds (exponential).
    pub service_mean: f64,
    /// Submission window; arrivals stop after it, the run drains.
    pub window: Duration,
    /// Per-server scheduling discipline (FCFS for the queueing model).
    pub algorithm: Algorithm,
    /// Middleware faults; default (disabled) runs the perfect path.
    pub faults: FaultSpec,
}

impl RedundancyConfig {
    /// A `d`-of-`servers` setup at 70 % normalized load: FCFS servers,
    /// one node each, 60 s mean service, one-hour window, completion-
    /// cancelled i.i.d. copies.
    pub fn new(servers: usize, d: usize) -> Self {
        let mut cfg = RedundancyConfig {
            servers,
            server_nodes: 1,
            d,
            cancel: CancelMode::OnCompletion,
            copies: CopyModel::Iid,
            arrival_rate: 0.0,
            service_mean: 60.0,
            window: Duration::from_hours(1),
            algorithm: Algorithm::Fcfs,
            faults: FaultSpec::default(),
        };
        cfg.arrival_rate = 0.7 * cfg.capacity_rate();
        cfg
    }

    /// Total service capacity `K·μ` in jobs per second — the normalizer
    /// for offered load (λ/Kμ = 1 is the no-redundancy stability edge).
    pub fn capacity_rate(&self) -> f64 {
        self.servers as f64 / self.service_mean
    }

    /// Sets the arrival rate to `load` × the capacity rate.
    pub fn with_load(mut self, load: f64) -> Self {
        assert!(load.is_finite() && load > 0.0, "load must be positive");
        self.arrival_rate = load * self.capacity_rate();
        self
    }

    /// Panics unless the configuration is sane.
    pub fn validate(&self) {
        assert!(self.servers >= 1, "need at least one server");
        assert!(self.server_nodes >= 1, "servers need at least one node");
        assert!(
            (1..=self.servers).contains(&self.d),
            "d must satisfy 1 <= d <= K (d = {}, K = {})",
            self.d,
            self.servers
        );
        assert!(
            self.arrival_rate.is_finite() && self.arrival_rate > 0.0,
            "arrival rate must be positive"
        );
        assert!(
            self.service_mean.is_finite() && self.service_mean > 0.0,
            "service mean must be positive"
        );
        assert!(!self.window.is_zero(), "window must be positive");
        if let CopyModel::Correlated { rho } = self.copies {
            assert!(
                (0.0..=1.0).contains(&rho),
                "correlation must be in [0, 1], got {rho}"
            );
        }
        self.faults.validate(self.servers);
    }
}

/// The pre-generated draw tables, job-major: job `j`'s copy `i` targets
/// `targets[j·d + i]` with runtime `runtimes[j·d + i]`.
struct JobTable {
    arrivals: Vec<SimTime>,
    targets: Vec<u32>,
    runtimes: Vec<Duration>,
}

/// Generates every draw of the run up front on dedicated seed children
/// (0 arrivals, 1 shared service, 2 independent service, 3 selection),
/// so the protocol's `place_into` touches no randomness at all and the
/// four streams cannot shift each other. The interarrival sampler
/// inverts the *same* uniforms at every rate, so two loads at one seed
/// see time-scaled versions of one arrival process — the λ sweep is
/// paired too.
fn generate(config: &RedundancyConfig, seed: &SeedSequence) -> JobTable {
    let mut arrival_rng = seed.child(0).rng();
    let mut shared_rng = seed.child(1).rng();
    let mut indep_rng = seed.child(2).rng();
    let mut select_rng = seed.child(3).rng();
    let interarrival = Exponential::new(config.arrival_rate);
    let service = Exponential::with_mean(config.service_mean);
    let w = config.copies.shared_weight();
    let k = config.servers;
    let mut table = JobTable {
        arrivals: Vec::new(),
        targets: Vec::new(),
        runtimes: Vec::new(),
    };
    let mut pick: Vec<u32> = Vec::with_capacity(k);
    let mut t = SimTime::ZERO;
    loop {
        t += Duration::from_secs(interarrival.sample(&mut arrival_rng));
        if t.since(SimTime::ZERO) >= config.window {
            return table;
        }
        table.arrivals.push(t);
        let shared = service.sample(&mut shared_rng);
        for _ in 0..config.d {
            // The independent draw is consumed even at w = 1, so every
            // copy model sees identical streams at a fixed seed.
            let indep = service.sample(&mut indep_rng);
            let secs = w * shared + (1.0 - w) * indep;
            table
                .runtimes
                .push(Duration::from_secs(secs).max(Duration::from_micros(1)));
        }
        // d distinct servers, uniformly, via a partial Fisher–Yates over
        // a fresh 0..K — one swap (one draw) per copy, independent of
        // earlier jobs' picks.
        pick.clear();
        pick.extend(0..k as u32);
        for i in 0..config.d {
            let r = i + (select_rng.next_u64() % (k - i) as u64) as usize;
            pick.swap(i, r);
            table.targets.push(pick[i]);
        }
    }
}

/// The redundancy-d placement policy: `d` pre-drawn copies per job, each
/// to its own server, racing under the configured [`CancelMode`].
struct RedundancyD {
    table: JobTable,
    d: usize,
    cancel: CancelMode,
}

impl SubmissionProtocol for RedundancyD {
    fn name(&self) -> &'static str {
        "redundancy-d"
    }

    fn n_jobs(&self) -> usize {
        self.table.arrivals.len()
    }

    fn arrival(&self, job: usize) -> SimTime {
        self.table.arrivals[job]
    }

    fn home(&self, job: usize) -> usize {
        self.table.targets[job * self.d] as usize
    }

    fn cancel_mode(&self) -> CancelMode {
        self.cancel
    }

    fn place_into(
        &mut self,
        job: usize,
        _now: SimTime,
        _rng: &mut StdRng,
        _scheds: &dyn SchedulerSet,
        out: &mut Vec<CopyPlan>,
    ) {
        for i in 0..self.d {
            let idx = job * self.d + i;
            let runtime = self.table.runtimes[idx];
            out.push(CopyPlan {
                target: self.table.targets[idx] as usize,
                nodes: 1,
                estimate: runtime,
                runtime,
            });
        }
    }
}

/// The no-redundancy baseline: one copy to one uniformly random server,
/// cancelled on start like every pre-existing protocol (with a single
/// copy the mode is vacuous — `d = 1` runs of [`run`] are locked bitwise
/// against this protocol in the proptest suite).
struct SingleSubmit {
    table: JobTable,
}

impl SubmissionProtocol for SingleSubmit {
    fn name(&self) -> &'static str {
        "single-submit"
    }

    fn n_jobs(&self) -> usize {
        self.table.arrivals.len()
    }

    fn arrival(&self, job: usize) -> SimTime {
        self.table.arrivals[job]
    }

    fn home(&self, job: usize) -> usize {
        self.table.targets[job] as usize
    }

    fn place_into(
        &mut self,
        job: usize,
        _now: SimTime,
        _rng: &mut StdRng,
        _scheds: &dyn SchedulerSet,
        out: &mut Vec<CopyPlan>,
    ) {
        let runtime = self.table.runtimes[job];
        out.push(CopyPlan {
            target: self.table.targets[job] as usize,
            nodes: 1,
            estimate: runtime,
            runtime,
        });
    }
}

fn drive<P: SubmissionProtocol>(
    config: &RedundancyConfig,
    protocol: P,
    seed: &SeedSequence,
) -> RunResult {
    let nodes = vec![config.server_nodes; config.servers];
    let scheds = ClusterSet::new(config.algorithm, Duration::ZERO, &nodes);
    // Streams 0–3 belong to generation; 4 is the driver rng (unused by
    // these table-driven protocols, reserved for parity with the other
    // protocols), 5 the fault sampler.
    let faults = if config.faults.is_disabled() {
        None
    } else {
        Some(FaultModel::new(config.faults.clone(), seed.child(5)))
    };
    SimDriver::new(
        protocol,
        Box::new(scheds),
        seed.child(4).rng(),
        faults,
        false,
    )
    .run()
}

/// Runs the redundancy-d protocol.
pub fn run(config: &RedundancyConfig, seed: SeedSequence) -> RunResult {
    config.validate();
    let table = generate(config, &seed);
    let protocol = RedundancyD {
        table,
        d: config.d,
        cancel: config.cancel,
    };
    drive(config, protocol, &seed)
}

/// Runs the no-redundancy baseline on the same draws: `config.d` is
/// overridden to 1, everything else (seed streams included) applies
/// unchanged, so the baseline is exactly the `d = 1` member of the
/// paired family.
pub fn run_single(config: &RedundancyConfig, seed: SeedSequence) -> RunResult {
    let mut cfg = config.clone();
    cfg.d = 1;
    cfg.validate();
    let table = generate(&cfg, &seed);
    let protocol = SingleSubmit { table };
    drive(&cfg, protocol, &seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> RedundancyConfig {
        let mut cfg = RedundancyConfig::new(3, 2).with_load(0.6);
        cfg.window = Duration::from_secs(1_800.0);
        cfg
    }

    #[test]
    fn generation_is_paired_across_modes() {
        let seed = SeedSequence::new(9);
        let iid = base();
        let mut ident = base();
        ident.copies = CopyModel::Identical;
        let mut on_start = base();
        on_start.cancel = CancelMode::OnStart;
        let a = generate(&iid, &seed);
        let b = generate(&ident, &seed);
        let c = generate(&on_start, &seed);
        assert_eq!(a.arrivals, b.arrivals, "arrivals must not shift");
        assert_eq!(a.targets, b.targets, "selection must not shift");
        assert_eq!(a.arrivals, c.arrivals);
        assert_eq!(a.runtimes, c.runtimes, "cancel mode is not a draw");
        assert!(!a.arrivals.is_empty());
    }

    #[test]
    fn copy_models_interpolate() {
        let seed = SeedSequence::new(10);
        let mut cfg = base();
        cfg.copies = CopyModel::Identical;
        let ident = generate(&cfg, &seed);
        for pair in ident.runtimes.chunks(2) {
            assert_eq!(pair[0], pair[1], "identical copies must share a draw");
        }
        cfg.copies = CopyModel::Correlated { rho: 1.0 };
        assert_eq!(generate(&cfg, &seed).runtimes, ident.runtimes);
        cfg.copies = CopyModel::Iid;
        let iid = generate(&cfg, &seed);
        assert_ne!(iid.runtimes, ident.runtimes);
        cfg.copies = CopyModel::Correlated { rho: 0.0 };
        assert_eq!(generate(&cfg, &seed).runtimes, iid.runtimes);
    }

    #[test]
    fn selection_picks_distinct_servers() {
        let cfg = RedundancyConfig::new(4, 3).with_load(0.5);
        let table = generate(&cfg, &SeedSequence::new(11));
        for copies in table.targets.chunks(3) {
            assert!(copies.iter().all(|&t| (t as usize) < 4));
            let mut sorted = copies.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "copies must go to distinct servers");
        }
    }

    #[test]
    fn on_start_race_never_wastes() {
        let mut cfg = base();
        cfg.cancel = CancelMode::OnStart;
        let run = run(&cfg, SeedSequence::new(12));
        assert!(!run.records.is_empty());
        assert_eq!(run.wasted_node_secs, 0.0);
        assert_eq!(run.zombie_starts, 0);
        assert_eq!(
            run.submits,
            run.records.len() as u64 + run.cancels + run.aborts
        );
    }

    #[test]
    fn completion_race_wastes_loser_work() {
        let cfg = base().with_load(0.8);
        let result = run(&cfg, SeedSequence::new(13));
        assert!(!result.records.is_empty());
        // Some loser must have been granted nodes before its winner
        // finished at this load.
        assert!(result.wasted_node_secs > 0.0);
        assert_eq!(result.zombie_starts, 0, "perfect middleware");
        assert_eq!(
            result.submits,
            result.records.len() as u64 + result.cancels + result.aborts
        );
        for r in &result.records {
            assert_eq!(r.completion, r.start + r.runtime);
            assert!(r.redundant);
            assert_eq!(r.copies, 2);
        }
    }

    #[test]
    fn d1_matches_single_submit_bitwise() {
        let mut cfg = base();
        cfg.d = 1;
        for cancel in [CancelMode::OnStart, CancelMode::OnCompletion] {
            cfg.cancel = cancel;
            let a = run(&cfg, SeedSequence::new(14));
            let b = run_single(&cfg, SeedSequence::new(14));
            assert_eq!(a.records, b.records, "{cancel:?}");
            assert_eq!(a.submits, b.submits);
            assert_eq!(a.cancels, b.cancels);
            assert_eq!(a.events, b.events);
            assert_eq!(a.max_queue_len, b.max_queue_len);
        }
    }

    #[test]
    fn same_seed_is_bit_identical_under_faults() {
        let mut cfg = base();
        cfg.faults = FaultSpec {
            cancel_loss: 0.3,
            submit_delay: crate::Delay::Fixed(Duration::from_secs(1.0)),
            ..FaultSpec::default()
        };
        let a = run(&cfg, SeedSequence::new(15));
        let b = run(&cfg, SeedSequence::new(15));
        assert_eq!(a.records, b.records);
        assert_eq!(a.wasted_node_secs.to_bits(), b.wasted_node_secs.to_bits());
        assert_eq!(a.lost_cancels, b.lost_cancels);
    }

    #[test]
    fn identical_copies_waste_more_than_iid_on_aggregate() {
        let mut total_ident = 0.0;
        let mut total_iid = 0.0;
        for rep in 0..8u64 {
            let seed = SeedSequence::new(16).child(rep);
            let mut cfg = base().with_load(0.7);
            cfg.copies = CopyModel::Identical;
            total_ident += run(&cfg, seed).wasted_node_secs;
            cfg.copies = CopyModel::Iid;
            total_iid += run(&cfg, seed).wasted_node_secs;
        }
        assert!(
            total_ident > total_iid,
            "identical {total_ident} vs iid {total_iid}"
        );
    }
}
