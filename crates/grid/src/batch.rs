//! The batched-submission protocol: multi-cluster placement behind a
//! batching metascheduler front end.
//!
//! Per-operation WS-GRAM transactions are what cap redundancy at r < 3
//! (Section 4.2); `rbr-middleware`'s batch model quantifies the capacity
//! side of amortizing them. This module adds the *behavioral* side to
//! the simulation: jobs no longer reach their schedulers at their true
//! arrival instants — the metascheduler holds each home cluster's
//! pending submissions and flushes them `size` at a time, or `deadline`
//! after the oldest pending job, whichever comes first. Every job in a
//! transaction is submitted at the flush instant, but its
//! [`JobRecord`](crate::record::JobRecord)
//! keeps the *true* arrival (via
//! [`SubmissionProtocol::record_arrival`]), so batch-fill latency shows
//! up in wait and stretch exactly where a real user would feel it.
//!
//! Cancel batching is orthogonal and rides in
//! [`FaultSpec::cancel_batch`](rbr_faults::FaultSpec): enabling it
//! routes the run through the faulty-middleware message path, where the
//! driver coalesces the cancellation callback's ops into shared
//! transactions (one loss coin and one delay per *transaction*).
//!
//! `size = 1` is exact identity: each "batch" flushes the instant its
//! only job arrives, so a [`BatchedGridSim`] run is bit-identical to
//! [`GridSim`](crate::GridSim) on the same config and seed (locked by a
//! test below).

use rand::rngs::StdRng;
use rbr_faults::{BatchSpec, FaultModel};
use rbr_sched::{ClusterSet, SchedulerSet};
use rbr_simcore::{SeedSequence, SimTime};

use crate::config::GridConfig;
use crate::driver::{CopyPlan, SimDriver, SubmissionProtocol};
use crate::record::RunResult;
use crate::sim::{generate_jobs, validate_jobs, MultiCluster};

/// Multi-cluster placement submitted through a batching front end: the
/// inner protocol decides *where copies go*, this wrapper decides *when
/// the submit transaction leaves the metascheduler*.
pub(crate) struct BatchedSubmit {
    inner: MultiCluster,
    /// Flush instant of each job's submit transaction.
    submit_at: Vec<SimTime>,
}

impl BatchedSubmit {
    /// Wraps `inner`, grouping each home cluster's arrival stream into
    /// `batch`-op transactions with a deadline-triggered tail flush.
    fn new(inner: MultiCluster, n_clusters: usize, batch: BatchSpec) -> Self {
        let n_jobs = inner.n_jobs();
        let mut submit_at = vec![SimTime::ZERO; n_jobs];
        // Jobs are generated cluster by cluster in arrival order, so one
        // forward pass per cluster sees its stream in order.
        let mut open: Vec<usize> = Vec::new();
        for c in 0..n_clusters {
            open.clear();
            let mut oldest = SimTime::ZERO;
            for j in (0..n_jobs).filter(|&j| inner.home(j) == c) {
                let arr = inner.arrival(j);
                if !open.is_empty() && arr > oldest + batch.deadline {
                    // The open transaction timed out before this job
                    // arrived: it flushed at its deadline.
                    let at = oldest + batch.deadline;
                    for &k in &open {
                        submit_at[k] = at;
                    }
                    open.clear();
                }
                if open.is_empty() {
                    oldest = arr;
                }
                open.push(j);
                if open.len() >= batch.size as usize {
                    // Filled: flushes the instant its last job arrives.
                    for &k in &open {
                        submit_at[k] = arr;
                    }
                    open.clear();
                }
            }
            if !open.is_empty() {
                let at = oldest + batch.deadline;
                for &k in &open {
                    submit_at[k] = at;
                }
            }
        }
        BatchedSubmit { inner, submit_at }
    }
}

impl SubmissionProtocol for BatchedSubmit {
    fn name(&self) -> &'static str {
        "batched-multi-cluster"
    }

    fn n_jobs(&self) -> usize {
        self.inner.n_jobs()
    }

    fn arrival(&self, job: usize) -> SimTime {
        self.submit_at[job]
    }

    fn record_arrival(&self, job: usize) -> SimTime {
        self.inner.arrival(job)
    }

    fn home(&self, job: usize) -> usize {
        self.inner.home(job)
    }

    fn place_into(
        &mut self,
        job: usize,
        now: SimTime,
        rng: &mut StdRng,
        scheds: &dyn SchedulerSet,
        out: &mut Vec<CopyPlan>,
    ) {
        self.inner.place_into(job, now, rng, scheds, out);
    }
}

/// The multi-cluster simulation behind a batching metascheduler:
/// submissions coalesce into `submit_batch`-op transactions, and — when
/// `config.faults.cancel_batch` enables it — cancellations do too.
pub struct BatchedGridSim {
    driver: SimDriver<BatchedSubmit>,
}

impl BatchedGridSim {
    /// Builds the batched simulation over the same seed hierarchy as
    /// [`GridSim`](crate::GridSim): identical seeds give identical job
    /// streams, so a batched run pairs with an unbatched baseline.
    ///
    /// # Panics
    /// Panics on an invalid config, or on `submit_batch.size > 1` with a
    /// zero deadline (an unfilled transaction would never flush).
    pub fn new(config: GridConfig, submit_batch: BatchSpec, seed: SeedSequence) -> Self {
        config.validate();
        assert!(
            submit_batch.size >= 1,
            "submit batch size must be at least 1"
        );
        if submit_batch.size > 1 {
            assert!(
                !submit_batch.deadline.is_zero(),
                "batched submits need a positive flush deadline"
            );
        }
        let jobs = generate_jobs(&config, &seed);
        validate_jobs(&config, &jobs);
        let n = config.n_clusters();
        let faults = if config.faults.is_disabled() {
            None
        } else {
            Some(FaultModel::new(
                config.faults.clone(),
                seed.child(n as u64 + 1),
            ))
        };
        let cluster_nodes: Vec<u32> = config.clusters.iter().map(|c| c.nodes).collect();
        let scheds = ClusterSet::new(config.algorithm, config.cbf_cycle, &cluster_nodes);
        let protocol = BatchedSubmit::new(MultiCluster::new(&config, jobs), n, submit_batch);
        BatchedGridSim {
            driver: SimDriver::new(
                protocol,
                Box::new(scheds),
                seed.child(n as u64).rng(),
                faults,
                config.collect_predictions,
            ),
        }
    }

    /// Convenience: build and run in one call.
    pub fn execute(config: GridConfig, submit_batch: BatchSpec, seed: SeedSequence) -> RunResult {
        BatchedGridSim::new(config, submit_batch, seed).run()
    }

    /// Number of jobs in the run.
    pub fn n_jobs(&self) -> usize {
        self.driver.protocol().n_jobs()
    }

    /// Runs the simulation to completion and returns the results.
    pub fn run(self) -> RunResult {
        self.driver.run()
    }
}

/// True arrival stream per home cluster, for tests and loadgen sanity:
/// the flush instants a `BatchedSubmit` computes for `arrivals`.
/// Exposed so the batching rule itself (size fill vs deadline timeout)
/// is testable without a whole sim.
pub fn flush_instants(arrivals: &[SimTime], batch: BatchSpec) -> Vec<SimTime> {
    let mut out = vec![SimTime::ZERO; arrivals.len()];
    let mut open: Vec<usize> = Vec::new();
    let mut oldest = SimTime::ZERO;
    for (j, &arr) in arrivals.iter().enumerate() {
        if !open.is_empty() && arr > oldest + batch.deadline {
            let at = oldest + batch.deadline;
            for &k in &open {
                out[k] = at;
            }
            open.clear();
        }
        if open.is_empty() {
            oldest = arr;
        }
        open.push(j);
        if open.len() >= batch.size as usize {
            for &k in &open {
                out[k] = arr;
            }
            open.clear();
        }
    }
    if !open.is_empty() {
        let at = oldest + batch.deadline;
        for &k in &open {
            out[k] = at;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use crate::GridSim;
    use rbr_simcore::Duration;

    fn small_config(n: usize, scheme: Scheme) -> GridConfig {
        let mut cfg = GridConfig::homogeneous(n, scheme);
        cfg.window = Duration::from_secs(1800.0);
        cfg
    }

    fn secs(ts: &[f64]) -> Vec<SimTime> {
        ts.iter().map(|&t| SimTime::from_secs(t)).collect()
    }

    #[test]
    fn size_one_flushes_each_job_at_its_own_arrival() {
        let arrivals = secs(&[0.0, 3.0, 7.5]);
        let batch = BatchSpec::of(1, Duration::ZERO);
        assert_eq!(flush_instants(&arrivals, batch), arrivals);
    }

    #[test]
    fn filled_batch_flushes_at_its_last_arrival() {
        let arrivals = secs(&[0.0, 2.0, 4.0, 5.0]);
        let batch = BatchSpec::of(2, Duration::from_secs(100.0));
        let flush = flush_instants(&arrivals, batch);
        assert_eq!(flush, secs(&[2.0, 2.0, 5.0, 5.0]));
    }

    #[test]
    fn deadline_flushes_a_stalled_batch() {
        let arrivals = secs(&[0.0, 50.0]);
        let batch = BatchSpec::of(4, Duration::from_secs(10.0));
        let flush = flush_instants(&arrivals, batch);
        // Job 0's transaction times out at 10 s; job 1 opens a fresh one
        // that also times out (end of stream).
        assert_eq!(flush, secs(&[10.0, 60.0]));
    }

    /// The acceptance gate: a unit submit batch is bit-identical to the
    /// unbatched simulator on the same config and seed.
    #[test]
    fn unit_batch_is_identity_with_gridsim() {
        for seed in 0u64..3 {
            let cfg = small_config(3, Scheme::All);
            let base = GridSim::execute(cfg, SeedSequence::new(seed));
            let cfg = small_config(3, Scheme::All);
            let batched = BatchedGridSim::execute(
                cfg,
                BatchSpec::of(1, Duration::ZERO),
                SeedSequence::new(seed),
            );
            assert_eq!(base.records, batched.records, "seed {seed}");
            assert_eq!(base.submits, batched.submits);
            assert_eq!(base.cancels, batched.cancels);
            assert_eq!(base.aborts, batched.aborts);
            assert_eq!(base.events, batched.events);
            assert_eq!(base.cancel_batches, 0);
            assert_eq!(batched.cancel_batches, 0);
        }
    }

    #[test]
    fn batched_submits_preserve_true_arrivals_in_records() {
        let cfg = small_config(2, Scheme::None);
        let base = GridSim::execute(cfg, SeedSequence::new(5));
        let cfg = small_config(2, Scheme::None);
        let batched = BatchedGridSim::execute(
            cfg,
            BatchSpec::of(8, Duration::from_secs(60.0)),
            SeedSequence::new(5),
        );
        assert_eq!(base.records.len(), batched.records.len());
        for (a, b) in base.records.iter().zip(&batched.records) {
            // Same true arrival, but the batched job cannot start before
            // its transaction flushed.
            assert_eq!(a.arrival, b.arrival);
            assert!(b.start >= b.arrival);
        }
        // Waiting for the batch to fill must cost somebody something.
        let mean_base = base.wait(crate::JobClass::All).mean();
        let mean_batched = batched.wait(crate::JobClass::All).mean();
        assert!(
            mean_batched >= mean_base,
            "batched mean wait {mean_batched} < unbatched {mean_base}"
        );
    }

    #[test]
    fn batched_run_is_deterministic() {
        let run = || {
            let mut cfg = small_config(3, Scheme::All);
            cfg.faults.cancel_batch = BatchSpec::of(4, Duration::from_secs(30.0));
            BatchedGridSim::execute(
                cfg,
                BatchSpec::of(4, Duration::from_secs(30.0)),
                SeedSequence::new(11),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.records, b.records);
        assert_eq!(a.cancel_batches, b.cancel_batches);
        assert_eq!(a.zombie_starts, b.zombie_starts);
        assert_eq!(a.wasted_node_secs, b.wasted_node_secs);
    }

    #[test]
    fn batched_cancels_dispatch_fewer_transactions() {
        let mut cfg = small_config(3, Scheme::All);
        cfg.faults.cancel_batch = BatchSpec::of(4, Duration::from_secs(30.0));
        let result =
            BatchedGridSim::execute(cfg, BatchSpec::of(1, Duration::ZERO), SeedSequence::new(12));
        assert!(result.cancel_batches > 0, "cancel batching must engage");
        // Batching coalesces: strictly fewer transactions than cancels
        // delivered plus cancels lost (each op would otherwise be its
        // own transaction).
        assert!(result.cancel_batches < result.cancels + result.lost_cancels);
        // Every job still completes exactly once.
        for r in &result.records {
            assert_eq!(r.completion, r.start + r.runtime);
        }
    }
}
