//! Redundant-request schemes.
//!
//! Section 3.3 evaluates five schemes — R2, R3, R4, HALF, ALL — "in which
//! a request is sent to 2, 3, 4, half, and all clusters, respectively.
//! One request is always sent to the local cluster."

/// How many clusters a redundant job submits to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Scheme {
    /// No redundancy: the local cluster only (the paper's baseline).
    None,
    /// A fixed number of clusters, local included (`R(2)` = the paper's
    /// R2, and so on).
    R(u32),
    /// Half of the clusters (rounded down, minimum 1).
    Half,
    /// Every cluster.
    All,
}

impl Scheme {
    /// The five redundant schemes of Figure 1, in plot order.
    pub fn paper_schemes() -> [Scheme; 5] {
        [
            Scheme::R(2),
            Scheme::R(3),
            Scheme::R(4),
            Scheme::Half,
            Scheme::All,
        ]
    }

    /// Total number of requests (local copy included) on a platform of
    /// `n_clusters` clusters. Always in `[1, n_clusters]`.
    ///
    /// # Panics
    /// Panics if `n_clusters == 0` or the scheme is `R(0)`.
    pub fn copies(&self, n_clusters: usize) -> usize {
        assert!(n_clusters > 0, "a platform needs at least one cluster");
        let raw = match *self {
            Scheme::None => 1,
            Scheme::R(k) => {
                assert!(k > 0, "R(0) is not a scheme");
                k as usize
            }
            Scheme::Half => (n_clusters / 2).max(1),
            Scheme::All => n_clusters,
        };
        raw.min(n_clusters)
    }

    /// True if the scheme sends more than the local request on a platform
    /// of `n_clusters`.
    pub fn is_redundant(&self, n_clusters: usize) -> bool {
        self.copies(n_clusters) > 1
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::None => write!(f, "NONE"),
            Scheme::R(k) => write!(f, "R{k}"),
            Scheme::Half => write!(f, "HALF"),
            Scheme::All => write!(f, "ALL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_match_paper_definitions() {
        assert_eq!(Scheme::None.copies(10), 1);
        assert_eq!(Scheme::R(2).copies(10), 2);
        assert_eq!(Scheme::R(4).copies(10), 4);
        assert_eq!(Scheme::Half.copies(10), 5);
        assert_eq!(Scheme::All.copies(10), 10);
        assert_eq!(Scheme::Half.copies(20), 10);
    }

    #[test]
    fn copies_capped_by_platform_size() {
        assert_eq!(Scheme::R(4).copies(2), 2);
        assert_eq!(Scheme::All.copies(1), 1);
        assert_eq!(Scheme::Half.copies(1), 1);
        assert_eq!(Scheme::Half.copies(3), 1);
    }

    #[test]
    fn redundancy_flag() {
        assert!(!Scheme::None.is_redundant(10));
        assert!(Scheme::R(2).is_redundant(10));
        assert!(!Scheme::R(4).is_redundant(1));
        assert!(!Scheme::Half.is_redundant(2)); // half of 2 = 1 cluster
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = Scheme::paper_schemes()
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(names, vec!["R2", "R3", "R4", "HALF", "ALL"]);
        assert_eq!(Scheme::None.to_string(), "NONE");
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        let _ = Scheme::All.copies(0);
    }
}
