//! # rbr-grid
//!
//! The multi-cluster platform of Section 3: N clusters, each driven by its
//! own batch scheduler and its own job stream, with jobs optionally
//! submitting **redundant requests** to remote clusters and cancelling the
//! losers the instant one copy starts (the zero-latency callback of
//! placeholder scheduling).
//!
//! * [`Scheme`] — how many copies a redundant job submits (R2/R3/R4/
//!   HALF/ALL);
//! * [`SelectionPolicy`] — how remote clusters are picked (uniform random,
//!   the paper's geometrically biased account distribution, or the
//!   least-loaded metascheduler baseline of the related work);
//! * [`GridConfig`] / [`GridSim`] — the simulation itself;
//! * [`JobRecord`] / [`RunResult`] — per-job outcomes and the stretch /
//!   fairness / prediction metrics derived from them.
//!
//! The simulation follows the paper's assumptions exactly: no network
//! overhead, no request-processing overhead, requests to remote clusters
//! identical to the local one (optionally inflated by the late-binding
//! data-staging factor of §3.1.2).
//!
//! A non-default [`FaultSpec`] in [`GridConfig::faults`] relaxes the
//! perfect-middleware assumption: control messages take time and get
//! lost, and clusters suffer scheduled outages (see [`mod@sim`] and
//! `rbr_faults` for the degraded protocol and determinism contract).

pub mod batch;
pub mod config;
pub mod driver;
pub mod dual_queue;
pub mod moldable;
pub mod observe;
pub mod record;
pub mod redundancy;
pub mod scheme;
pub mod select;
pub mod sim;

pub use batch::BatchedGridSim;
pub use config::{ClusterSpec, GridConfig};
pub use driver::{CancelMode, CopyPlan, SimDriver, SubmissionProtocol};
pub use observe::{clear_observer_factory, install_observer_factory, RunObserver};
pub use rbr_faults::{BatchSpec, Delay, FaultSpec, Outage};
pub use record::{JobClass, JobRecord, RunResult};
pub use redundancy::{CopyModel, RedundancyConfig};
pub use scheme::Scheme;
pub use select::SelectionPolicy;
pub use sim::GridSim;
