//! Option (iii) of Section 2: redundant requests to multiple batch queues
//! of a single resource, expressed as a [`SubmissionProtocol`] over the
//! shared [`SimDriver`] event loop.
//!
//! The cluster runs two queues: a *premium* queue (served first, billed
//! at a higher service-unit rate) and a *standard* queue. A fraction of
//! users exercises option (iii): one copy in each queue, cancel the loser
//! when one starts — dodging the paper's conundrum "should one wait
//! possibly a long time for a cheaper resource allocation?" by letting
//! the queues race. The rest submit to the standard queue only.
//!
//! Because the run flows through the shared driver, it reports the full
//! [`RunResult`]: stretch by class (dual users are the "redundant" class),
//! utilization, waste, and zombie counters — all zero-waste under the
//! perfect middleware this experiment assumes.

use rand::rngs::StdRng;
use rbr_sched::{MultiQueueSet, SchedulerSet};
use rbr_simcore::{unit, Duration, SeedSequence, SimTime};
use rbr_stats::Summary;
use rbr_workload::{EstimateModel, JobSpec, LublinConfig, LublinModel};

use crate::driver::{CopyPlan, SimDriver, SubmissionProtocol};
use crate::record::{JobClass, RunResult};

/// Queue indices.
const PREMIUM: usize = 0;
const STANDARD: usize = 1;

/// Configuration of the dual-queue experiment.
#[derive(Clone, Debug)]
pub struct DualQueueConfig {
    /// Cluster size.
    pub nodes: u32,
    /// Fraction of jobs submitting to both queues (option iii users).
    pub dual_fraction: f64,
    /// Submission window.
    pub window: Duration,
    /// Service-unit price multiplier of the premium queue (standard = 1).
    pub premium_price: f64,
    /// Runtime-estimate model.
    pub estimates: EstimateModel,
}

impl DualQueueConfig {
    /// Default setup: a 128-node cluster, premium at 2× the standard
    /// service-unit rate.
    pub fn new(dual_fraction: f64) -> Self {
        DualQueueConfig {
            nodes: 128,
            dual_fraction,
            window: Duration::from_hours(1),
            premium_price: 2.0,
            estimates: EstimateModel::Exact,
        }
    }
}

/// The dual-queue placement policy: option-(iii) users race a premium
/// copy against a standard copy; everyone else queues standard-only.
struct DualQueue {
    jobs: Vec<JobSpec>,
    dual: Vec<bool>,
}

impl SubmissionProtocol for DualQueue {
    fn name(&self) -> &'static str {
        "dual-queue"
    }

    fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    fn arrival(&self, job: usize) -> SimTime {
        self.jobs[job].arrival
    }

    fn home(&self, _job: usize) -> usize {
        STANDARD
    }

    fn place_into(
        &mut self,
        job: usize,
        _now: SimTime,
        _rng: &mut StdRng,
        _scheds: &dyn SchedulerSet,
        out: &mut Vec<CopyPlan>,
    ) {
        let spec = self.jobs[job];
        let queues: &[usize] = if self.dual[job] {
            &[PREMIUM, STANDARD]
        } else {
            &[STANDARD]
        };
        out.extend(queues.iter().map(|&q| CopyPlan {
            target: q,
            nodes: spec.nodes,
            estimate: spec.estimate,
            runtime: spec.runtime,
        }));
    }
}

/// Outcome of a dual-queue run: the unified [`RunResult`] plus the
/// pricing context needed to interpret it.
#[derive(Clone, Debug)]
pub struct DualQueueResult {
    /// The full run: dual users are the `Redundant` job class, standard
    /// users the `NonRedundant` class; `ran_on` is the winning queue.
    pub run: RunResult,
    /// Service-unit price multiplier of the premium queue.
    pub premium_price: f64,
}

impl DualQueueResult {
    /// Stretch of jobs that used both queues.
    pub fn dual_stretch(&self) -> Summary {
        self.run.stretch(JobClass::Redundant)
    }

    /// Stretch of standard-only jobs.
    pub fn single_stretch(&self) -> Summary {
        self.run.stretch(JobClass::NonRedundant)
    }

    /// Fraction of dual jobs whose premium copy won.
    pub fn premium_win_fraction(&self) -> f64 {
        let duals = self.run.records.iter().filter(|r| r.redundant).count();
        if duals == 0 {
            return 0.0;
        }
        let wins = self
            .run
            .records
            .iter()
            .filter(|r| r.redundant && r.ran_on == PREMIUM)
            .count();
        wins as f64 / duals as f64
    }

    /// Mean service-unit cost per node-second across dual jobs (1 =
    /// always standard, `premium_price` = always premium).
    pub fn dual_mean_price(&self) -> f64 {
        let mut duals = 0usize;
        let mut price = 0.0;
        for r in self.run.records.iter().filter(|r| r.redundant) {
            duals += 1;
            price += if r.ran_on == PREMIUM {
                self.premium_price
            } else {
                1.0
            };
        }
        if duals == 0 {
            0.0
        } else {
            price / duals as f64
        }
    }
}

/// Runs the experiment on one cluster.
///
/// Stream `seed.child(0)` drives the workload, `seed.child(1)` the
/// dual-user coin-flips; the driver's own stream (`seed.child(2)`) is
/// untouched because placement draws no randomness.
pub fn run(config: &DualQueueConfig, seed: SeedSequence) -> DualQueueResult {
    assert!(
        (0.0..=1.0).contains(&config.dual_fraction),
        "dual fraction must be in [0, 1]"
    );
    let model = LublinModel::new(LublinConfig::paper_2006().with_max_nodes(config.nodes));
    let mut wl_rng = seed.child(0).rng();
    let jobs: Vec<JobSpec> = model.generate(&mut wl_rng, config.window, &config.estimates);
    let mut coin = seed.child(1).rng();
    let dual: Vec<bool> = jobs
        .iter()
        .map(|_| unit(&mut coin) < config.dual_fraction)
        .collect();

    let protocol = DualQueue { jobs, dual };
    let scheds = MultiQueueSet::new(config.nodes, 2);
    let driver = SimDriver::new(protocol, Box::new(scheds), seed.child(2).rng(), None, false);
    DualQueueResult {
        run: driver.run(),
        premium_price: config.premium_price,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_jobs_complete() {
        let mut cfg = DualQueueConfig::new(0.3);
        cfg.window = Duration::from_secs(1_200.0);
        let result = run(&cfg, SeedSequence::new(200));
        assert!(result.dual_stretch().n() > 0);
        assert!(result.single_stretch().n() > 0);
        assert!((0.0..=1.0).contains(&result.premium_win_fraction()));
        assert!(result.dual_mean_price() >= 1.0);
        assert!(result.dual_mean_price() <= cfg.premium_price);
        for r in &result.run.records {
            assert!(r.start >= r.arrival);
            assert_eq!(r.completion, r.start + r.runtime);
            assert!(r.ran_on == PREMIUM || r.ran_on == STANDARD);
        }
    }

    #[test]
    fn unified_metrics_come_for_free() {
        let mut cfg = DualQueueConfig::new(0.4);
        cfg.window = Duration::from_secs(1_200.0);
        let result = run(&cfg, SeedSequence::new(200));
        // Perfect middleware: the race never wastes node-time.
        assert_eq!(result.run.zombie_starts, 0);
        assert_eq!(result.run.wasted_node_secs, 0.0);
        assert_eq!(result.run.waste_fraction(), 0.0);
        // One shared pool behind two queues.
        assert_eq!(result.run.pool_nodes, vec![cfg.nodes]);
        assert_eq!(result.run.max_queue_len.len(), 2);
        let u = result.run.overall_utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn dual_users_beat_single_users() {
        let mut cfg = DualQueueConfig::new(0.3);
        cfg.window = Duration::from_secs(3_600.0);
        let result = run(&cfg, SeedSequence::new(201));
        assert!(
            result.dual_stretch().mean() <= result.single_stretch().mean(),
            "dual {} vs single {}",
            result.dual_stretch().mean(),
            result.single_stretch().mean()
        );
    }

    #[test]
    fn zero_fraction_means_everyone_is_single() {
        let mut cfg = DualQueueConfig::new(0.0);
        cfg.window = Duration::from_secs(900.0);
        let result = run(&cfg, SeedSequence::new(202));
        assert_eq!(result.dual_stretch().n(), 0);
        assert!(result.single_stretch().n() > 0);
    }

    #[test]
    fn deterministic() {
        let mut cfg = DualQueueConfig::new(0.5);
        cfg.window = Duration::from_secs(900.0);
        let a = run(&cfg, SeedSequence::new(203));
        let b = run(&cfg, SeedSequence::new(203));
        assert_eq!(a.run.records, b.run.records);
        assert_eq!(a.premium_win_fraction(), b.premium_win_fraction());
    }
}
