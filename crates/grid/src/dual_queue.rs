//! Option (iii) of Section 2: redundant requests to multiple batch queues
//! of a single resource.
//!
//! The cluster runs two queues: a *premium* queue (served first, billed
//! at a higher service-unit rate) and a *standard* queue. A fraction of
//! users exercises option (iii): one copy in each queue, cancel the loser
//! when one starts — dodging the paper's conundrum "should one wait
//! possibly a long time for a cheaper resource allocation?" by letting
//! the queues race. The rest submit to the standard queue only.

use rbr_sched::{MultiQueueScheduler, Request, RequestId};
use rbr_simcore::{unit, Duration, Engine, SeedSequence, SimTime};
use rbr_stats::Summary;
use rbr_workload::{EstimateModel, JobSpec, LublinConfig, LublinModel};

/// Queue indices.
const PREMIUM: usize = 0;
const STANDARD: usize = 1;

/// Configuration of the dual-queue experiment.
#[derive(Clone, Debug)]
pub struct DualQueueConfig {
    /// Cluster size.
    pub nodes: u32,
    /// Fraction of jobs submitting to both queues (option iii users).
    pub dual_fraction: f64,
    /// Submission window.
    pub window: Duration,
    /// Service-unit price multiplier of the premium queue (standard = 1).
    pub premium_price: f64,
    /// Runtime-estimate model.
    pub estimates: EstimateModel,
}

impl DualQueueConfig {
    /// Default setup: a 128-node cluster, premium at 2× the standard
    /// service-unit rate.
    pub fn new(dual_fraction: f64) -> Self {
        DualQueueConfig {
            nodes: 128,
            dual_fraction,
            window: Duration::from_hours(1),
            premium_price: 2.0,
            estimates: EstimateModel::Exact,
        }
    }
}

/// Outcome of a dual-queue run.
#[derive(Clone, Debug, Default)]
pub struct DualQueueResult {
    /// Stretch of jobs that used both queues.
    pub dual_stretch: Summary,
    /// Stretch of standard-only jobs.
    pub single_stretch: Summary,
    /// Fraction of dual jobs whose premium copy won.
    pub premium_win_fraction: f64,
    /// Mean service-unit cost per node-second across dual jobs (1 =
    /// always standard, `premium_price` = always premium).
    pub dual_mean_price: f64,
}

/// Engine events.
#[derive(Clone, Copy)]
enum Ev {
    Submit(usize),
    Complete(u64),
}

/// Runs the experiment on one cluster.
pub fn run(config: &DualQueueConfig, seed: SeedSequence) -> DualQueueResult {
    assert!(
        (0.0..=1.0).contains(&config.dual_fraction),
        "dual fraction must be in [0, 1]"
    );
    let model = LublinModel::new(LublinConfig::paper_2006().with_max_nodes(config.nodes));
    let mut wl_rng = seed.child(0).rng();
    let jobs: Vec<JobSpec> = model.generate(&mut wl_rng, config.window, &config.estimates);
    let mut coin = seed.child(1).rng();
    let dual: Vec<bool> = jobs
        .iter()
        .map(|_| unit(&mut coin) < config.dual_fraction)
        .collect();

    let mut sched = MultiQueueScheduler::new(config.nodes, 2);
    let mut engine: Engine<Ev> = Engine::new();
    for (j, job) in jobs.iter().enumerate() {
        engine.schedule(job.arrival, Ev::Submit(j));
    }

    // Request id encoding: job index × 2 + queue.
    let mut started: Vec<Option<(usize, SimTime)>> = vec![None; jobs.len()];
    let mut scratch: Vec<RequestId> = Vec::new();
    let mut worklist: Vec<RequestId> = Vec::new();

    let commit =
        |worklist: &mut Vec<RequestId>,
         sched: &mut MultiQueueScheduler,
         engine: &mut Engine<Ev>,
         started: &mut Vec<Option<(usize, SimTime)>>,
         now: SimTime| {
            let mut scratch = Vec::new();
            while let Some(rid) = worklist.pop() {
                let j = (rid.0 / 2) as usize;
                let queue = (rid.0 % 2) as usize;
                if started[j].is_some() {
                    scratch.clear();
                    sched.abort(now, rid, &mut scratch);
                    worklist.append(&mut scratch);
                    continue;
                }
                started[j] = Some((queue, now));
                engine.schedule(now + jobs[j].runtime, Ev::Complete(rid.0));
                let sibling = RequestId(j as u64 * 2 + (1 - queue) as u64);
                scratch.clear();
                sched.cancel(now, sibling, &mut scratch);
                worklist.append(&mut scratch);
            }
        };

    while let Some((now, ev)) = engine.pop() {
        scratch.clear();
        match ev {
            Ev::Submit(j) => {
                let job = &jobs[j];
                let queues: &[usize] = if dual[j] {
                    &[PREMIUM, STANDARD]
                } else {
                    &[STANDARD]
                };
                for &q in queues {
                    if started[j].is_some() {
                        break;
                    }
                    let req = Request::new(
                        RequestId(j as u64 * 2 + q as u64),
                        job.nodes,
                        job.estimate,
                        now,
                    );
                    sched.submit(now, q, req, &mut scratch);
                    worklist.append(&mut scratch);
                    commit(&mut worklist, &mut sched, &mut engine, &mut started, now);
                }
            }
            Ev::Complete(rid) => {
                sched.complete(now, RequestId(rid), &mut scratch);
                worklist.append(&mut scratch);
                commit(&mut worklist, &mut sched, &mut engine, &mut started, now);
            }
        }
    }

    let mut result = DualQueueResult::default();
    let mut premium_wins = 0usize;
    let mut duals = 0usize;
    let mut price = 0.0;
    for (j, job) in jobs.iter().enumerate() {
        let (queue, start) = started[j].unwrap_or_else(|| panic!("job {j} never started"));
        let stretch = (start.since(job.arrival) + job.runtime) / job.runtime;
        if dual[j] {
            result.dual_stretch.push(stretch);
            duals += 1;
            if queue == PREMIUM {
                premium_wins += 1;
                price += config.premium_price;
            } else {
                price += 1.0;
            }
        } else {
            result.single_stretch.push(stretch);
        }
    }
    if duals > 0 {
        result.premium_win_fraction = premium_wins as f64 / duals as f64;
        result.dual_mean_price = price / duals as f64;
    }
    result
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_jobs_complete() {
        let mut cfg = DualQueueConfig::new(0.3);
        cfg.window = Duration::from_secs(1_200.0);
        let result = run(&cfg, SeedSequence::new(200));
        assert!(result.dual_stretch.n() > 0);
        assert!(result.single_stretch.n() > 0);
        assert!((0.0..=1.0).contains(&result.premium_win_fraction));
        assert!(result.dual_mean_price >= 1.0);
        assert!(result.dual_mean_price <= cfg.premium_price);
    }

    #[test]
    fn dual_users_beat_single_users() {
        let mut cfg = DualQueueConfig::new(0.3);
        cfg.window = Duration::from_secs(3_600.0);
        let result = run(&cfg, SeedSequence::new(201));
        assert!(
            result.dual_stretch.mean() <= result.single_stretch.mean(),
            "dual {} vs single {}",
            result.dual_stretch.mean(),
            result.single_stretch.mean()
        );
    }

    #[test]
    fn zero_fraction_means_everyone_is_single() {
        let mut cfg = DualQueueConfig::new(0.0);
        cfg.window = Duration::from_secs(900.0);
        let result = run(&cfg, SeedSequence::new(202));
        assert_eq!(result.dual_stretch.n(), 0);
        assert!(result.single_stretch.n() > 0);
    }

    #[test]
    fn deterministic() {
        let mut cfg = DualQueueConfig::new(0.5);
        cfg.window = Duration::from_secs(900.0);
        let a = run(&cfg, SeedSequence::new(203));
        let b = run(&cfg, SeedSequence::new(203));
        assert_eq!(a.dual_stretch.mean(), b.dual_stretch.mean());
        assert_eq!(a.premium_win_fraction, b.premium_win_fraction);
    }
}
