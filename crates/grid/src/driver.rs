//! The protocol-parameterized simulation core.
//!
//! Section 2 of the paper enumerates four ways to issue redundant batch
//! requests: to multiple clusters, to multiple queues of one cluster,
//! for multiple node counts, and combinations thereof. They differ only
//! in *where copies go* — the race itself (submit copies, first start
//! wins, cancel the losers, account the damage) is one protocol. This
//! module implements that race once:
//!
//! * [`SubmissionProtocol`] — the per-variant decision hooks: how many
//!   jobs, when each arrives, and which [`CopyPlan`]s (target, shape,
//!   estimate, runtime) a job submits;
//! * [`SimDriver`] — the event loop that owns the engine pump, the
//!   scheduler set, the copy/request bookkeeping, the faulty-middleware
//!   message layer, and the [`RunResult`] accounting.
//!
//! Targets are indices into a [`SchedulerSet`]: independent clusters for
//! the multi-cluster variant, priority queues for the dual-queue
//! variant, the same single cluster for every shape of a moldable job.
//!
//! # Perfect vs faulty middleware
//!
//! Under perfect middleware (no [`FaultModel`]), cancellation is the
//! zero-latency callback of placeholder scheduling: the instant a copy
//! is granted nodes, the job starts there and every sibling is
//! cancelled. Copies not yet submitted when the callback fires are never
//! submitted at all, and same-instant double grants are resolved by
//! deterministic event order (the losers are revoked via `abort`).
//!
//! With a [`FaultModel`], control traffic becomes messages that take
//! time and get lost, clusters suffer scheduled outages, and losing
//! copies may run anyway (zombies) — see the module docs of
//! [`crate::sim`] for the degraded protocol.
//!
//! # Adding a fourth protocol
//!
//! Implement [`SubmissionProtocol`] and hand it to [`SimDriver`] with a
//! scheduler set; everything else — winner commit, loser cancellation,
//! waste accounting, [`JobRecord`] synthesis — is inherited:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rbr_grid::driver::{CopyPlan, SimDriver, SubmissionProtocol};
//! use rbr_sched::{Algorithm, ClusterSet, SchedulerSet};
//! use rbr_simcore::{Duration, SeedSequence, SimTime};
//!
//! /// Option (i) taken to the extreme: every job races on every cluster.
//! struct Flood {
//!     arrivals: Vec<SimTime>,
//!     runtime: Duration,
//! }
//!
//! impl SubmissionProtocol for Flood {
//!     fn name(&self) -> &'static str {
//!         "flood"
//!     }
//!     fn n_jobs(&self) -> usize {
//!         self.arrivals.len()
//!     }
//!     fn arrival(&self, job: usize) -> SimTime {
//!         self.arrivals[job]
//!     }
//!     fn home(&self, job: usize) -> usize {
//!         job % 2
//!     }
//!     fn place_into(
//!         &mut self,
//!         job: usize,
//!         _now: SimTime,
//!         _rng: &mut StdRng,
//!         scheds: &dyn SchedulerSet,
//!         out: &mut Vec<CopyPlan>,
//!     ) {
//!         let home = self.home(job);
//!         // Home cluster first — copy 0 is the guaranteed submission.
//!         out.extend(
//!             (0..scheds.n_targets())
//!                 .map(|c| (c + home) % scheds.n_targets())
//!                 .map(|target| CopyPlan {
//!                     target,
//!                     nodes: 1,
//!                     estimate: self.runtime,
//!                     runtime: self.runtime,
//!                 }),
//!         );
//!     }
//! }
//!
//! let protocol = Flood {
//!     arrivals: vec![SimTime::ZERO, SimTime::from_secs(1.0)],
//!     runtime: Duration::from_secs(60.0),
//! };
//! let scheds = ClusterSet::new(Algorithm::Easy, Duration::ZERO, &[4, 4]);
//! let driver = SimDriver::new(
//!     protocol,
//!     Box::new(scheds),
//!     SeedSequence::new(1).rng(),
//!     None,  // perfect middleware
//!     false, // no wait predictions
//! );
//! let result = driver.run();
//! assert_eq!(result.records.len(), 2);
//! assert_eq!(result.zombie_starts, 0);
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rbr_faults::FaultModel;
use rbr_sched::{Request, RequestId, SchedulerSet};
use rbr_simcore::{Duration, Engine, SimTime};

use crate::observe::{observer_from_factory, ObserverAdapter, RunObserver};
use crate::record::{JobRecord, RunResult};

/// When a job's losing copies are cancelled.
///
/// The paper's placeholder-scheduling protocol cancels the instant one
/// copy starts; the post-2006 redundancy-d literature (Gardner et al.,
/// the Anton/Ayesta/Jonckheere/Verloop survey) studies the harsher
/// variant where every copy occupies its server until the first copy
/// *completes* — duplicated service becomes real work, which is exactly
/// what shrinks the stability region for identical copies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CancelMode {
    /// Cancel the losers the instant one copy is granted nodes (the
    /// zero-latency callback of placeholder scheduling; the paper's
    /// protocol and the default for every existing protocol).
    #[default]
    OnStart,
    /// Let every granted copy execute; the first *completion* wins the
    /// race, queued losers are cancelled and running losers are killed
    /// (their partial work is accounted as waste).
    OnCompletion,
}

/// One planned copy of a job: where it goes and what it asks for.
///
/// The multi-cluster variant plans identical copies on different
/// clusters (modulo remote estimate inflation); the moldable variant
/// plans different `(nodes, runtime)` shapes on the same cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CopyPlan {
    /// Submission target (index into the [`SchedulerSet`]).
    pub target: usize,
    /// Nodes requested.
    pub nodes: u32,
    /// Compute-time estimate handed to the scheduler.
    pub estimate: Duration,
    /// Actual runtime if this copy wins the race.
    pub runtime: Duration,
}

/// The decision hooks that distinguish one redundant-request variant
/// from another. Everything else — the race, the cancellation callback,
/// the faulty-middleware message layer, the accounting — lives in
/// [`SimDriver`].
///
/// See the [module docs](self) for a complete fourth-protocol example.
pub trait SubmissionProtocol {
    /// Protocol name (for diagnostics).
    fn name(&self) -> &'static str;

    /// Number of jobs in the run.
    fn n_jobs(&self) -> usize;

    /// Arrival instant of job `job` — the instant the driver schedules
    /// its submission.
    fn arrival(&self, job: usize) -> SimTime;

    /// Arrival instant recorded in the job's [`JobRecord`]. Defaults to
    /// [`SubmissionProtocol::arrival`]; batched-submit protocols override
    /// it to keep the job's *true* arrival in the record while
    /// `arrival()` returns the transaction flush instant, so batch-fill
    /// latency shows up in wait and stretch.
    fn record_arrival(&self, job: usize) -> SimTime {
        self.arrival(job)
    }

    /// The job's home target, recorded in its [`JobRecord`].
    fn home(&self, job: usize) -> usize;

    /// When this protocol's losing copies are cancelled. Defaults to
    /// [`CancelMode::OnStart`] — the paper's zero-latency callback —
    /// which keeps every pre-existing protocol bit-identical. Queried
    /// once at driver construction.
    fn cancel_mode(&self) -> CancelMode {
        CancelMode::OnStart
    }

    /// Plans the copies job `job` submits on arrival by appending them to
    /// `out` in submission order (`out` is a driver-owned scratch buffer,
    /// already cleared — this hook runs once per job, so it must not
    /// allocate). At least one plan must be appended; the first entry is
    /// the home submission (under faulty middleware it is the one copy
    /// whose delivery escalates to guaranteed, so no job can vanish).
    ///
    /// This is the only hook that may draw randomness; the driver never
    /// touches `rng` itself, so a protocol's draw sequence is exactly
    /// its own.
    fn place_into(
        &mut self,
        job: usize,
        now: SimTime,
        rng: &mut StdRng,
        scheds: &dyn SchedulerSet,
        out: &mut Vec<CopyPlan>,
    );
}

/// Engine events.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// A job arrives (index into the job table).
    Submit(usize),
    /// A running request finishes (dense request index; its target is
    /// recovered from the copy plan).
    Complete {
        /// Dense request index.
        req: u64,
    },
    /// Faulty middleware: a submit message reaches its scheduler.
    DeliverSubmit {
        /// Job index.
        job: usize,
        /// Copy index within the job.
        copy: usize,
    },
    /// Faulty middleware: a cancel message reaches its scheduler.
    DeliverCancel {
        /// Job index.
        job: usize,
        /// Copy index within the job.
        copy: usize,
    },
    /// A scheduled target outage begins.
    OutageDown {
        /// Affected target.
        cluster: usize,
        /// Instant the target accepts traffic again.
        recover: SimTime,
    },
    /// Batched cancels: the open transaction's flush deadline expires.
    /// Stale if the batch already flushed on size (`serial` mismatch).
    CancelFlush {
        /// Serial of the batch this deadline belongs to.
        serial: u64,
    },
}

/// Which job (and which of its copies) a request belongs to. Packed to
/// eight bytes — there are two of these per job per run, and the
/// completion path reads them on every event.
#[derive(Clone, Copy, Debug)]
struct ReqInfo {
    job: u32,
    copy: u32,
}

/// Lifecycle of one copy under faulty middleware.
#[derive(Clone, Copy, Debug, PartialEq)]
enum CopyPhase {
    /// Submit message travelling (or awaiting an outage recovery).
    InFlight,
    /// Waiting in a scheduler's queue.
    Queued,
    /// Granted nodes and executing since `start`.
    Running {
        /// Execution start instant.
        start: SimTime,
    },
    /// Cancel overtook the submit; discarded on delivery.
    Doomed,
    /// Cancelled, killed, dropped, or finished.
    Dead,
}

/// One copy of a job under faulty middleware.
#[derive(Clone, Copy, Debug)]
struct CopyState {
    rid: Option<RequestId>,
    phase: CopyPhase,
}

/// Mutable per-job state during the run.
///
/// Per-job collections live in the driver's flat arenas (copy plans and
/// copy states share offsets; request ids are issued contiguously per
/// job), so a job's state is a fixed-size record and the race/cancel/
/// abort path allocates nothing per copy.
#[derive(Clone, Copy, Debug, Default)]
struct JobState {
    started: Option<(usize, SimTime)>,
    redundant: bool,
    predicted_wait: Option<Duration>,
    done: bool,
    /// Index of the copy whose start committed the job (faulty runs).
    winner: Option<usize>,
    /// This job's slice of the plan arena (and, in faulty runs, of the
    /// copy-state arena — both are appended at arrival, so the offsets
    /// coincide). Zero-length until the job arrives.
    plan_first: u32,
    plan_len: u32,
    /// First request id issued for this job (perfect-middleware runs;
    /// ids are issued contiguously during the job's single submit event).
    req_first: u64,
    /// How many requests this job issued (perfect-middleware runs).
    req_count: u32,
}

/// The shared event loop: owns the engine pump, the scheduler set, the
/// request bookkeeping, and the [`RunResult`] accounting for every
/// [`SubmissionProtocol`].
pub struct SimDriver<P: SubmissionProtocol> {
    protocol: P,
    engine: Engine<Event>,
    scheds: Box<dyn SchedulerSet>,
    /// Flat copy-plan arena; job `j`'s plans are the `plan_first ..
    /// plan_first + plan_len` slice recorded in its [`JobState`].
    plan_arena: Vec<CopyPlan>,
    /// Flat copy-state arena (faulty runs), sharing the plan arena's
    /// per-job offsets.
    copy_arena: Vec<CopyState>,
    /// Scratch handed to [`SubmissionProtocol::place_into`], reused
    /// across submits.
    plan_buf: Vec<CopyPlan>,
    states: Vec<JobState>,
    reqs: Vec<ReqInfo>,
    rng: StdRng,
    result: RunResult,
    records: Vec<Option<JobRecord>>,
    scratch: Vec<RequestId>,
    worklist: VecDeque<RequestId>,
    collect_predictions: bool,
    /// True when the protocol races to first *completion*
    /// ([`CancelMode::OnCompletion`]); cached at construction.
    cancel_on_completion: bool,
    /// Fault sampler on its own seed stream; `None` runs the original
    /// perfect-middleware protocol.
    faults: Option<FaultModel>,
    /// Per-target outage horizon: target `c` is down while
    /// `now < outage_until[c]`.
    outage_until: Vec<SimTime>,
    /// Tombstones for killed requests whose `Complete` event is still in
    /// the engine (it has no cancellation API).
    dead: Vec<bool>,
    /// Pending batched cancels `(job, copy)` awaiting the open
    /// transaction's flush (empty when cancel batching is disabled).
    cancel_buf: Vec<(u32, u32)>,
    /// Serial of the open cancel batch; bumped on every flush so stale
    /// deadline events are recognized and ignored.
    cancel_serial: u64,
    /// Run-level observer (the invariant auditor); `None` in normal runs.
    observer: Option<Rc<RefCell<dyn RunObserver>>>,
    /// True when a trace sink was attached at construction; cached so
    /// the event loop pays one branch, not a relaxed load, per check.
    /// Phase timers and the queue-depth series only exist when set.
    obs_trace: bool,
    /// Wall seconds spent inside [`SubmissionProtocol::place_into`]
    /// (only accumulated when `obs_trace`, on one submission in
    /// [`PHASE_SAMPLE_EVERY`]).
    obs_protocol_secs: f64,
    /// Submissions seen so far, for the placement timer's sampling
    /// stride (only maintained when `obs_trace`).
    obs_place_tick: u64,
}

/// Events between two samples of the per-target queue-depth trace
/// series (tracing only) — coarse enough to keep a smoke trace in the
/// tens of kilobytes, fine enough to see a queue-growth trajectory.
const QUEUE_SAMPLE_EVERY: u64 = 256;

/// Phase timers read the wall clock on one iteration (or submission)
/// in this many, and [`SimDriver::flush_obs`] scales the accumulated
/// seconds back up. Timing every event costs ~45% of the event loop in
/// `Instant::now` calls; sampling keeps the traced run within the
/// BENCH_exec.json `obs_overhead` budget while the per-phase shares —
/// what the breakdown is for — stay statistically faithful. The stride
/// is keyed to deterministic counters, never to time.
const PHASE_SAMPLE_EVERY: u64 = 16;

/// Wall-clock phase accumulators for the event loop; allocated only
/// when a trace sink is attached.
#[derive(Default)]
struct PhaseTimers {
    /// Seconds inside `Engine::pop` (event-queue operations).
    queue_ops: f64,
    /// Seconds inside event handlers (protocol + placement).
    handler: f64,
}

impl<P: SubmissionProtocol> SimDriver<P> {
    /// Builds the driver: schedules every job's arrival, then (with
    /// faulty middleware) the configured outages.
    ///
    /// `rng` is handed to [`SubmissionProtocol::place_into`] untouched, so the
    /// protocol fully owns its draw sequence. `collect_predictions`
    /// records each request's scheduler wait forecast (the set must
    /// support prediction).
    pub fn new(
        protocol: P,
        scheds: Box<dyn SchedulerSet>,
        rng: StdRng,
        faults: Option<FaultModel>,
        collect_predictions: bool,
    ) -> Self {
        let n_jobs = protocol.n_jobs();
        let n_targets = scheds.n_targets();
        let mut engine = Engine::new();
        for j in 0..n_jobs {
            engine.schedule(protocol.arrival(j), Event::Submit(j));
        }
        if let Some(model) = &faults {
            for o in &model.spec().outages {
                engine.schedule(
                    o.down,
                    Event::OutageDown {
                        cluster: o.cluster,
                        recover: o.recover,
                    },
                );
            }
        }
        let mut driver = SimDriver {
            result: RunResult {
                max_queue_len: vec![0; n_targets],
                pool_nodes: scheds.pool_nodes(),
                ..Default::default()
            },
            engine,
            scheds,
            plan_arena: Vec::with_capacity(n_jobs * 2),
            copy_arena: Vec::new(),
            plan_buf: Vec::new(),
            states: vec![JobState::default(); n_jobs],
            reqs: Vec::with_capacity(n_jobs * 2),
            rng,
            records: vec![None; n_jobs],
            scratch: Vec::new(),
            worklist: VecDeque::new(),
            collect_predictions,
            cancel_on_completion: protocol.cancel_mode() == CancelMode::OnCompletion,
            faults,
            outage_until: vec![SimTime::ZERO; n_targets],
            dead: Vec::new(),
            cancel_buf: Vec::new(),
            cancel_serial: 0,
            observer: None,
            obs_trace: rbr_obs::trace::enabled(),
            obs_protocol_secs: 0.0,
            obs_place_tick: 0,
            protocol,
        };
        if let Some(obs) = observer_from_factory() {
            driver.attach_run_observer(obs);
        }
        driver
    }

    /// Attaches a run observer (see [`crate::observe`]): the driver
    /// forwards its own milestones and wires the scheduler-level hooks
    /// through the set, replacing any previously attached observer.
    pub fn attach_run_observer(&mut self, obs: Rc<RefCell<dyn RunObserver>>) {
        self.scheds
            .attach_observer(Rc::new(RefCell::new(ObserverAdapter(obs.clone()))));
        self.observer = Some(obs);
    }

    /// Runs the simulation to completion and returns the results.
    ///
    /// # Panics
    /// Panics if any job fails to start or complete — that would be a
    /// scheduler bug, not a valid outcome.
    pub fn run(mut self) -> RunResult {
        let mut timers = self.obs_trace.then(PhaseTimers::default);
        let mut tick: u64 = 0;
        loop {
            // With a trace attached, one iteration in PHASE_SAMPLE_EVERY
            // times the pop and the handler separately, splitting the
            // loop into queue-ops vs handler wall time; detached, the
            // loop is the original code path.
            let sampled = timers.is_some() && tick.is_multiple_of(PHASE_SAMPLE_EVERY);
            tick += 1;
            let popped = if sampled {
                let timers = timers.as_mut().expect("sampled implies timers");
                let t0 = Instant::now();
                let popped = self.engine.pop();
                timers.queue_ops += t0.elapsed().as_secs_f64();
                popped
            } else {
                self.engine.pop()
            };
            let Some((now, event)) = popped else { break };
            if let Some(obs) = &self.observer {
                let kind = match event {
                    Event::Submit(_) => "submit",
                    Event::Complete { .. } => "complete",
                    Event::DeliverSubmit { .. } => "deliver-submit",
                    Event::DeliverCancel { .. } => "deliver-cancel",
                    Event::OutageDown { .. } => "outage-down",
                    Event::CancelFlush { .. } => "cancel-flush",
                };
                obs.borrow_mut().on_event(now, kind);
            }
            let handler_t0 = sampled.then(Instant::now);
            match event {
                Event::Submit(j) => self.handle_submit(now, j),
                Event::Complete { req } => self.handle_complete(now, req),
                Event::DeliverSubmit { job, copy } => self.handle_deliver_submit(now, job, copy),
                Event::DeliverCancel { job, copy } => self.handle_deliver_cancel(now, job, copy),
                Event::OutageDown { cluster, recover } => {
                    self.handle_outage_down(now, cluster, recover)
                }
                Event::CancelFlush { serial } => self.handle_cancel_flush(now, serial),
            }
            if let (Some(timers), Some(t0)) = (timers.as_mut(), handler_t0) {
                timers.handler += t0.elapsed().as_secs_f64();
            }
            if self.obs_trace && self.engine.processed().is_multiple_of(QUEUE_SAMPLE_EVERY) {
                self.sample_queue_depths(now);
            }
        }
        self.result.events = self.engine.processed();
        self.result.backfills = self.scheds.backfills();
        let records = std::mem::take(&mut self.records);
        self.result.records = records
            .into_iter()
            .enumerate()
            .map(|(j, r)| r.unwrap_or_else(|| panic!("job {j} never completed")))
            .collect();
        if let Some(obs) = &self.observer {
            obs.borrow_mut().on_run_end(&self.result);
        }
        self.flush_obs(timers);
        self.result
    }

    /// Emits one `grid.queue_depth` trace record per target at the
    /// current virtual instant (tracing only; sampled every
    /// [`QUEUE_SAMPLE_EVERY`] events by the caller).
    fn sample_queue_depths(&self, now: SimTime) {
        for c in 0..self.scheds.n_targets() {
            rbr_obs::trace::event(
                rbr_obs::Clock::Sim,
                now.as_secs(),
                "grid.queue_depth",
                &[
                    ("target", rbr_obs::trace::Field::U64(c as u64)),
                    (
                        "depth",
                        rbr_obs::trace::Field::U64(self.scheds.queue_len(c) as u64),
                    ),
                ],
            );
        }
    }

    /// End-of-run observability flush: phase records to the trace and
    /// per-protocol run counters to the metrics registry. Runs once per
    /// simulation; both sinks are pure side channels, so results are
    /// unaffected (names are formatted here, never on the hot path).
    fn flush_obs(&self, timers: Option<PhaseTimers>) {
        if let Some(timers) = timers {
            // Scale the sampled accumulators back to whole-run seconds.
            let scale = PHASE_SAMPLE_EVERY as f64;
            let queue_ops = timers.queue_ops * scale;
            let handler = timers.handler * scale;
            let protocol = self.obs_protocol_secs * scale;
            let placement = (handler - protocol).max(0.0);
            rbr_obs::trace::phase("grid.run", "queue-ops", queue_ops);
            rbr_obs::trace::phase("grid.run", "protocol", protocol);
            rbr_obs::trace::phase("grid.run", "placement", placement);
        }
        if !rbr_obs::metrics::enabled() {
            return;
        }
        let name = self.protocol.name();
        let count = |metric: &str, n: u64| {
            rbr_obs::metrics::counter(&format!("grid.{name}.{metric}")).add(n);
        };
        count("runs", 1);
        count("events", self.result.events);
        count("submits", self.result.submits);
        count("cancels", self.result.cancels);
        count("aborts", self.result.aborts);
        count("zombie_starts", self.result.zombie_starts);
        count("lost_submits", self.result.lost_submits);
        count("lost_cancels", self.result.lost_cancels);
        count("outage_kills", self.result.outage_kills);
        count("cancel_batches", self.result.cancel_batches);
        rbr_obs::metrics::gauge(&format!("grid.{name}.wasted_node_secs"))
            .add(self.result.wasted_node_secs);
        let depth_hwm = rbr_obs::metrics::histogram("grid.cluster_queue_hwm");
        for &hwm in &self.result.max_queue_len {
            depth_hwm.observe(hwm as u64);
        }
        let qs = self.engine.queue_stats();
        let sim = rbr_obs::metrics::counter("sim.queue.pushes");
        sim.add(qs.pushes);
        rbr_obs::metrics::counter("sim.queue.pops").add(qs.pops);
        rbr_obs::metrics::counter("sim.queue.resizes").add(qs.resizes);
        rbr_obs::metrics::counter("sim.queue.lap_rebuilds").add(qs.lap_rebuilds);
        rbr_obs::metrics::histogram("sim.queue.depth_hwm").observe(qs.depth_hwm);
    }

    /// The protocol driving this run.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The plan of job `j`'s copy `copy`.
    fn plan(&self, j: usize, copy: usize) -> CopyPlan {
        self.plan_arena[self.states[j].plan_first as usize + copy]
    }

    /// The plan of one request's copy.
    fn plan_of(&self, rid: RequestId) -> CopyPlan {
        let ReqInfo { job, copy } = self.reqs[rid.0 as usize];
        self.plan(job as usize, copy as usize)
    }

    /// The copy state of job `j`'s copy `copy` (faulty runs).
    fn copy_state(&self, j: usize, copy: usize) -> CopyState {
        self.copy_arena[self.states[j].plan_first as usize + copy]
    }

    /// Mutable copy state of job `j`'s copy `copy` (faulty runs).
    fn copy_mut(&mut self, j: usize, copy: usize) -> &mut CopyState {
        &mut self.copy_arena[self.states[j].plan_first as usize + copy]
    }

    fn handle_submit(&mut self, now: SimTime, j: usize) {
        self.plan_buf.clear();
        let place_t0 = if self.obs_trace {
            let sampled = self.obs_place_tick.is_multiple_of(PHASE_SAMPLE_EVERY);
            self.obs_place_tick += 1;
            sampled.then(Instant::now)
        } else {
            None
        };
        self.protocol.place_into(
            j,
            now,
            &mut self.rng,
            self.scheds.as_ref(),
            &mut self.plan_buf,
        );
        if let Some(t0) = place_t0 {
            self.obs_protocol_secs += t0.elapsed().as_secs_f64();
        }
        debug_assert!(
            !self.plan_buf.is_empty(),
            "a job must submit at least one copy"
        );
        self.states[j].redundant = self.plan_buf.len() > 1;
        self.states[j].plan_first = self.plan_arena.len() as u32;
        self.states[j].plan_len = self.plan_buf.len() as u32;
        self.plan_arena.extend_from_slice(&self.plan_buf);

        if self.faults.is_some() {
            // Unreliable middleware: every copy becomes a message. No
            // zero-latency short-circuit — all copies are dispatched.
            self.dispatch_faulty_submits(now, j);
            return;
        }
        if self.cancel_on_completion {
            // Completion race: every copy is dispatched and may execute.
            self.dispatch_racing_submits(now, j);
            return;
        }

        self.states[j].req_first = self.reqs.len() as u64;
        for copy in 0..self.states[j].plan_len as usize {
            if self.states[j].started.is_some() {
                // The callback already fired: the remaining copies are
                // never submitted (they would be cancelled in the same
                // instant with no effect on any schedule).
                break;
            }
            let plan = self.plan(j, copy);
            let rid = RequestId(self.reqs.len() as u64);
            self.reqs.push(ReqInfo {
                job: j as u32,
                copy: copy as u32,
            });
            let req = Request::new(rid, plan.nodes, plan.estimate, now);
            self.result.submits += 1;
            self.scratch.clear();
            self.scheds.submit(now, plan.target, req, &mut self.scratch);
            self.states[j].req_count += 1;
            self.worklist.extend(self.scratch.drain(..));
            if self.collect_predictions {
                let wait = self
                    .scheds
                    .predicted_start(now, plan.target, rid)
                    .map(|s| s.since(now))
                    .expect("request just submitted must be known");
                let best = match self.states[j].predicted_wait {
                    Some(prev) => prev.min(wait),
                    None => wait,
                };
                self.states[j].predicted_wait = Some(best);
            }
            self.note_queue(plan.target);
            self.commit_starts(now);
        }
    }

    fn handle_complete(&mut self, now: SimTime, req: u64) {
        self.result.makespan = now;
        if self.faults.is_some() {
            self.handle_complete_faulty(now, req);
            return;
        }
        if self.cancel_on_completion {
            self.handle_complete_racing(now, req);
            return;
        }
        let rid = RequestId(req);
        let j = self.reqs[req as usize].job as usize;
        let plan = self.plan_of(rid);
        let state = &mut self.states[j];
        debug_assert_eq!(state.started.map(|(c, _)| c), Some(plan.target));
        debug_assert!(!state.done, "job {j} completed twice");
        state.done = true;

        let (_, start) = state.started.expect("completing job must have started");
        let rec = JobRecord {
            job: j,
            home: self.protocol.home(j),
            ran_on: plan.target,
            nodes: plan.nodes,
            arrival: self.protocol.record_arrival(j),
            start,
            completion: now,
            runtime: plan.runtime,
            redundant: state.redundant,
            copies: state.req_count,
            predicted_wait: state.predicted_wait,
        };
        if let Some(obs) = &self.observer {
            obs.borrow_mut().on_job_record(&rec);
        }
        self.records[j] = Some(rec);

        self.scratch.clear();
        self.scheds
            .complete(now, plan.target, rid, &mut self.scratch);
        self.worklist.extend(self.scratch.drain(..));
        self.commit_starts(now);
    }

    /// Perfect middleware, [`CancelMode::OnCompletion`]: submits every
    /// copy of job `j`. Unlike the on-start race there is no
    /// short-circuit — a copy that is granted nodes executes, so all
    /// copies stay live until the first completion. Copy states live in
    /// the shared arena (as in faulty runs) because per-copy phases now
    /// matter even with perfect messaging.
    fn dispatch_racing_submits(&mut self, now: SimTime, j: usize) {
        debug_assert_eq!(
            self.copy_arena.len(),
            self.states[j].plan_first as usize,
            "copy arena must share the plan arena's offsets"
        );
        self.states[j].req_first = self.reqs.len() as u64;
        for copy in 0..self.states[j].plan_len as usize {
            let plan = self.plan(j, copy);
            let rid = RequestId(self.reqs.len() as u64);
            self.reqs.push(ReqInfo {
                job: j as u32,
                copy: copy as u32,
            });
            self.dead.push(false);
            self.copy_arena.push(CopyState {
                rid: Some(rid),
                phase: CopyPhase::Queued,
            });
            let req = Request::new(rid, plan.nodes, plan.estimate, now);
            self.result.submits += 1;
            self.scratch.clear();
            self.scheds.submit(now, plan.target, req, &mut self.scratch);
            self.states[j].req_count += 1;
            self.worklist.extend(self.scratch.drain(..));
            if self.collect_predictions {
                let wait = self
                    .scheds
                    .predicted_start(now, plan.target, rid)
                    .map(|s| s.since(now))
                    .expect("request just submitted must be known");
                let best = match self.states[j].predicted_wait {
                    Some(prev) => prev.min(wait),
                    None => wait,
                };
                self.states[j].predicted_wait = Some(best);
            }
            self.note_queue(plan.target);
        }
        self.commit_starts(now);
    }

    /// Perfect middleware, [`CancelMode::OnCompletion`]: the first copy
    /// of a job to finish wins; queued losers are cancelled, running
    /// losers are killed and their partial work accounted as waste.
    fn handle_complete_racing(&mut self, now: SimTime, req: u64) {
        if self.dead[req as usize] {
            // A loser killed at the winner's completion; its engine
            // event is stale.
            return;
        }
        let ReqInfo { job, copy } = self.reqs[req as usize];
        let (j, winner) = (job as usize, copy as usize);
        let plan = self.plan(j, winner);
        let CopyPhase::Running { start } = self.copy_state(j, winner).phase else {
            unreachable!(
                "completing copy must be running, was {:?}",
                self.copy_state(j, winner).phase
            )
        };
        debug_assert!(!self.states[j].done, "job {j} completed twice");
        self.copy_mut(j, winner).phase = CopyPhase::Dead;
        self.states[j].done = true;
        let rec = JobRecord {
            job: j,
            home: self.protocol.home(j),
            ran_on: plan.target,
            nodes: plan.nodes,
            arrival: self.protocol.record_arrival(j),
            start,
            completion: now,
            runtime: plan.runtime,
            redundant: self.states[j].redundant,
            copies: self.states[j].req_count,
            predicted_wait: self.states[j].predicted_wait,
        };
        if let Some(obs) = &self.observer {
            obs.borrow_mut().on_job_record(&rec);
        }
        self.records[j] = Some(rec);
        self.scratch.clear();
        self.scheds
            .complete(now, plan.target, RequestId(req), &mut self.scratch);
        self.worklist.extend(self.scratch.drain(..));
        self.note_queue(plan.target);

        // The completion callback: cancel every surviving loser.
        for loser in 0..self.states[j].plan_len as usize {
            if loser == winner {
                continue;
            }
            let cs = self.copy_state(j, loser);
            match cs.phase {
                CopyPhase::Queued => {
                    let rid = cs.rid.expect("queued copy has a request id");
                    let target = self.plan(j, loser).target;
                    self.scratch.clear();
                    if self.scheds.cancel(now, target, rid, &mut self.scratch) {
                        self.result.cancels += 1;
                        self.copy_mut(j, loser).phase = CopyPhase::Dead;
                    }
                    // A false return means the grant raced this cancel:
                    // the copy is already in the worklist and will be
                    // revoked there (the job is done).
                    self.worklist.extend(self.scratch.drain(..));
                    self.note_queue(target);
                }
                CopyPhase::Running { start } => {
                    // Kill the running loser; its partial work is wasted.
                    let rid = cs.rid.expect("running copy has a request id");
                    let loser_plan = self.plan(j, loser);
                    self.result.cancels += 1;
                    self.result.wasted_node_secs +=
                        loser_plan.nodes as f64 * now.since(start).as_secs();
                    self.dead[rid.0 as usize] = true;
                    self.copy_mut(j, loser).phase = CopyPhase::Dead;
                    self.scratch.clear();
                    self.scheds
                        .complete(now, loser_plan.target, rid, &mut self.scratch);
                    self.worklist.extend(self.scratch.drain(..));
                    self.note_queue(loser_plan.target);
                }
                CopyPhase::Dead => {}
                phase => unreachable!("perfect racing copy in phase {phase:?}"),
            }
        }
        self.commit_starts(now);
    }

    /// Start worklist under the perfect-middleware completion race: every
    /// grant executes (no sibling cancellation, no zombie accounting —
    /// concurrent executions are the protocol), except grants that raced
    /// the winner's completion in the same instant, which are revoked.
    fn commit_starts_racing(&mut self, now: SimTime) {
        while let Some(rid) = self.worklist.pop_front() {
            let ReqInfo { job, copy } = self.reqs[rid.0 as usize];
            let (j, copy) = (job as usize, copy as usize);
            let plan = self.plan(j, copy);
            debug_assert!(!self.dead[rid.0 as usize], "dead request started");
            debug_assert_eq!(self.copy_state(j, copy).phase, CopyPhase::Queued);
            if self.states[j].done {
                // Granted in the same instant the winner completed (the
                // cancel saw the grant already issued): revoke.
                self.result.aborts += 1;
                self.copy_mut(j, copy).phase = CopyPhase::Dead;
                self.scratch.clear();
                self.scheds.abort(now, plan.target, rid, &mut self.scratch);
                self.worklist.extend(self.scratch.drain(..));
                self.note_queue(plan.target);
                continue;
            }
            self.copy_mut(j, copy).phase = CopyPhase::Running { start: now };
            if self.states[j].started.is_none() {
                self.states[j].started = Some((plan.target, now));
            }
            self.engine
                .schedule(now + plan.runtime, Event::Complete { req: rid.0 });
            self.note_queue(plan.target);
        }
    }

    /// Faulty middleware: turns each copy of job `j` into a submit
    /// message routed through the [`FaultModel`].
    fn dispatch_faulty_submits(&mut self, now: SimTime, j: usize) {
        debug_assert_eq!(
            self.copy_arena.len(),
            self.states[j].plan_first as usize,
            "copy arena must share the plan arena's offsets"
        );
        for copy in 0..self.states[j].plan_len as usize {
            // Copy 0 is the home submission: it escalates to guaranteed
            // delivery after the retry budget, so no job can vanish.
            let plan = self
                .faults
                .as_mut()
                .expect("faulty dispatch requires a fault model")
                .plan_submit(now, copy == 0);
            self.result.lost_submits += plan.lost_attempts as u64;
            let phase = match plan.delivery {
                Some(at) => {
                    self.engine
                        .schedule(at, Event::DeliverSubmit { job: j, copy });
                    CopyPhase::InFlight
                }
                None => {
                    self.result.dropped_copies += 1;
                    CopyPhase::Dead
                }
            };
            self.copy_arena.push(CopyState { rid: None, phase });
        }
    }

    /// A submit message arrives at its scheduler (faulty runs only).
    fn handle_deliver_submit(&mut self, now: SimTime, j: usize, copy: usize) {
        let plan = self.plan(j, copy);
        let c = plan.target;
        if now < self.outage_until[c] {
            // The target is down: the middleware holds the message and
            // re-delivers at recovery.
            self.engine
                .schedule(self.outage_until[c], Event::DeliverSubmit { job: j, copy });
            return;
        }
        match self.copy_state(j, copy).phase {
            CopyPhase::InFlight => {}
            CopyPhase::Doomed => {
                // The cancel overtook this submit; the broker discards it.
                self.copy_mut(j, copy).phase = CopyPhase::Dead;
                return;
            }
            CopyPhase::Dead => return,
            phase => unreachable!("submit delivered to copy in phase {phase:?}"),
        }
        if self.states[j].done {
            // The job finished while this (retried or delayed) submission
            // was in flight; the broker discards it on arrival.
            self.copy_mut(j, copy).phase = CopyPhase::Dead;
            return;
        }
        let rid = RequestId(self.reqs.len() as u64);
        self.reqs.push(ReqInfo {
            job: j as u32,
            copy: copy as u32,
        });
        self.dead.push(false);
        let req = Request::new(rid, plan.nodes, plan.estimate, now);
        self.result.submits += 1;
        self.scratch.clear();
        self.scheds.submit(now, c, req, &mut self.scratch);
        *self.copy_mut(j, copy) = CopyState {
            rid: Some(rid),
            phase: CopyPhase::Queued,
        };
        self.worklist.extend(self.scratch.drain(..));
        if self.collect_predictions {
            let wait = self
                .scheds
                .predicted_start(now, c, rid)
                .map(|s| s.since(now))
                .expect("request just submitted must be known");
            let best = match self.states[j].predicted_wait {
                Some(prev) => prev.min(wait),
                None => wait,
            };
            self.states[j].predicted_wait = Some(best);
        }
        self.note_queue(c);
        self.commit_starts(now);
    }

    /// A cancel message arrives at its scheduler (faulty runs only).
    fn handle_deliver_cancel(&mut self, now: SimTime, j: usize, copy: usize) {
        let plan = self.plan(j, copy);
        let cs = self.copy_state(j, copy);
        if now < self.outage_until[plan.target] {
            self.engine.schedule(
                self.outage_until[plan.target],
                Event::DeliverCancel { job: j, copy },
            );
            return;
        }
        match cs.phase {
            CopyPhase::InFlight => {
                self.copy_mut(j, copy).phase = CopyPhase::Doomed;
            }
            CopyPhase::Queued => {
                let rid = cs.rid.expect("queued copy has a request id");
                self.scratch.clear();
                if self.scheds.cancel(now, plan.target, rid, &mut self.scratch) {
                    self.result.cancels += 1;
                }
                self.copy_mut(j, copy).phase = CopyPhase::Dead;
                self.worklist.extend(self.scratch.drain(..));
                self.note_queue(plan.target);
                self.commit_starts(now);
            }
            CopyPhase::Running { start } => {
                // Kill the running copy; its partial work is wasted.
                let rid = cs.rid.expect("running copy has a request id");
                self.result.cancels += 1;
                self.result.wasted_node_secs += plan.nodes as f64 * now.since(start).as_secs();
                self.dead[rid.0 as usize] = true;
                self.copy_mut(j, copy).phase = CopyPhase::Dead;
                self.scratch.clear();
                self.scheds
                    .complete(now, plan.target, rid, &mut self.scratch);
                self.worklist.extend(self.scratch.drain(..));
                let stale_winner_killed =
                    self.states[j].winner == Some(copy) && !self.states[j].done;
                if stale_winner_killed {
                    // A stale cancel (sent before an outage restarted the
                    // race) caught up with the copy that is now the
                    // winner. The submitter notices the kill and
                    // resubmits this copy with guaranteed delivery.
                    self.states[j].started = None;
                    self.states[j].winner = None;
                    let plan = self
                        .faults
                        .as_mut()
                        .expect("faulty path has a fault model")
                        .plan_submit(now, true);
                    self.result.lost_submits += plan.lost_attempts as u64;
                    let at = plan.delivery.expect("guaranteed delivery");
                    *self.copy_mut(j, copy) = CopyState {
                        rid: None,
                        phase: CopyPhase::InFlight,
                    };
                    self.engine
                        .schedule(at, Event::DeliverSubmit { job: j, copy });
                }
                self.note_queue(plan.target);
                self.commit_starts(now);
            }
            CopyPhase::Doomed | CopyPhase::Dead => {}
        }
    }

    /// A running request finished under faulty middleware: the first copy
    /// of a job to finish completes the job; any later completion is a
    /// zombie whose execution was pure waste.
    fn handle_complete_faulty(&mut self, now: SimTime, req: u64) {
        if self.dead[req as usize] {
            // Killed earlier (cancel or outage); stale engine event.
            return;
        }
        let ReqInfo { job, copy } = self.reqs[req as usize];
        let (j, copy) = (job as usize, copy as usize);
        let plan = self.plan(j, copy);
        let cs = self.copy_state(j, copy);
        let CopyPhase::Running { start } = cs.phase else {
            unreachable!("completing copy must be running, was {:?}", cs.phase)
        };
        self.copy_mut(j, copy).phase = CopyPhase::Dead;
        self.scratch.clear();
        self.scheds
            .complete(now, plan.target, RequestId(req), &mut self.scratch);
        self.worklist.extend(self.scratch.drain(..));
        if self.states[j].done {
            // Zombie ran to natural completion: its whole execution is
            // wasted node-time.
            self.result.wasted_node_secs += plan.nodes as f64 * plan.runtime.as_secs();
        } else {
            self.states[j].done = true;
            let rec = JobRecord {
                job: j,
                home: self.protocol.home(j),
                ran_on: plan.target,
                nodes: plan.nodes,
                arrival: self.protocol.record_arrival(j),
                start,
                completion: now,
                runtime: plan.runtime,
                redundant: self.states[j].redundant,
                copies: self.states[j].plan_len,
                predicted_wait: self.states[j].predicted_wait,
            };
            if let Some(obs) = &self.observer {
                obs.borrow_mut().on_job_record(&rec);
            }
            self.records[j] = Some(rec);
            if self.cancel_on_completion {
                // The completion race's cancellation callback: losers
                // are told to stand down only now, via the same lossy
                // message layer as everything else.
                self.send_cancels(now, j, copy);
            }
        }
        self.note_queue(plan.target);
        self.commit_starts(now);
    }

    /// A scheduled outage begins: the target's scheduler loses all
    /// state. Running copies are killed (the job restarts if the winner
    /// died), queued copies evaporate and are re-delivered at recovery.
    fn handle_outage_down(&mut self, now: SimTime, c: usize, recover: SimTime) {
        self.outage_until[c] = recover;
        self.scheds.restart(c);
        for j in 0..self.states.len() {
            for copy in 0..self.states[j].plan_len as usize {
                let plan = self.plan(j, copy);
                let cs = self.copy_state(j, copy);
                if plan.target != c {
                    continue;
                }
                match cs.phase {
                    CopyPhase::Queued => {
                        // Evaporated with the scheduler; the middleware
                        // notices at recovery and re-delivers.
                        self.result.outage_kills += 1;
                        *self.copy_mut(j, copy) = CopyState {
                            rid: None,
                            phase: CopyPhase::InFlight,
                        };
                        self.engine
                            .schedule(recover, Event::DeliverSubmit { job: j, copy });
                    }
                    CopyPhase::Running { start } => {
                        let rid = cs.rid.expect("running copy has a request id");
                        self.result.outage_kills += 1;
                        self.result.wasted_node_secs +=
                            plan.nodes as f64 * now.since(start).as_secs();
                        self.dead[rid.0 as usize] = true;
                        if self.states[j].winner == Some(copy) && !self.states[j].done {
                            // The job itself died with the cluster; the
                            // submitter resubmits this copy at recovery.
                            self.states[j].started = None;
                            self.states[j].winner = None;
                            *self.copy_mut(j, copy) = CopyState {
                                rid: None,
                                phase: CopyPhase::InFlight,
                            };
                            self.engine
                                .schedule(recover, Event::DeliverSubmit { job: j, copy });
                        } else {
                            self.copy_mut(j, copy).phase = CopyPhase::Dead;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Faulty middleware's cancellation callback: fired once, when the
    /// first copy of job `j` starts. Per-op middleware sends each live
    /// sibling its own cancel message; with cancel batching enabled
    /// ([`rbr_faults::BatchSpec`]) the ops join the open transaction
    /// instead and travel together when it flushes.
    fn send_cancels(&mut self, now: SimTime, j: usize, winner_copy: usize) {
        let batch = self
            .faults
            .as_ref()
            .expect("faulty path has a fault model")
            .spec()
            .cancel_batch;
        for copy in 0..self.states[j].plan_len as usize {
            if copy == winner_copy {
                continue;
            }
            match self.copy_state(j, copy).phase {
                CopyPhase::InFlight | CopyPhase::Queued | CopyPhase::Running { .. } => {}
                CopyPhase::Doomed | CopyPhase::Dead => continue,
            }
            if !batch.is_disabled() {
                self.enqueue_cancel(now, j, copy, batch);
                continue;
            }
            let plan = self
                .faults
                .as_mut()
                .expect("faulty path has a fault model")
                .plan_cancel(now);
            match plan.delivery {
                Some(at) => {
                    self.engine
                        .schedule(at, Event::DeliverCancel { job: j, copy });
                }
                None => self.result.lost_cancels += 1,
            }
        }
    }

    /// Adds one cancel op to the open batched transaction, opening it
    /// (and arming its flush deadline) if empty, and flushing immediately
    /// once it reaches the configured size.
    fn enqueue_cancel(
        &mut self,
        now: SimTime,
        j: usize,
        copy: usize,
        batch: rbr_faults::BatchSpec,
    ) {
        if self.cancel_buf.is_empty() {
            self.engine.schedule(
                now + batch.deadline,
                Event::CancelFlush {
                    serial: self.cancel_serial,
                },
            );
        }
        self.cancel_buf.push((j as u32, copy as u32));
        if self.cancel_buf.len() >= batch.size as usize {
            self.flush_cancels(now);
        }
    }

    /// The open transaction's deadline expired. Stale once the batch
    /// already flushed on size (the serial moved on).
    fn handle_cancel_flush(&mut self, now: SimTime, serial: u64) {
        if serial == self.cancel_serial {
            self.flush_cancels(now);
        }
    }

    /// Dispatches the open cancel transaction as ONE middleware message:
    /// one loss coin, one delay sample, shared by every op it carries
    /// (that is the point of batching — and its failure mode: a lost
    /// transaction orphans the whole batch).
    fn flush_cancels(&mut self, now: SimTime) {
        self.cancel_serial += 1;
        if self.cancel_buf.is_empty() {
            return;
        }
        self.result.cancel_batches += 1;
        let plan = self
            .faults
            .as_mut()
            .expect("faulty path has a fault model")
            .plan_cancel(now);
        match plan.delivery {
            Some(at) => {
                for i in 0..self.cancel_buf.len() {
                    let (job, copy) = self.cancel_buf[i];
                    self.engine.schedule(
                        at,
                        Event::DeliverCancel {
                            job: job as usize,
                            copy: copy as usize,
                        },
                    );
                }
            }
            None => self.result.lost_cancels += self.cancel_buf.len() as u64,
        }
        self.cancel_buf.clear();
    }

    /// Faulty variant of the start worklist: a start commits the job if
    /// it is the first, otherwise the copy becomes a zombie (no
    /// zero-latency revocation — the cancellation callback travels as a
    /// message like everything else).
    fn commit_starts_faulty(&mut self, now: SimTime) {
        while let Some(rid) = self.worklist.pop_front() {
            let ReqInfo { job, copy } = self.reqs[rid.0 as usize];
            let (j, copy) = (job as usize, copy as usize);
            let plan = self.plan(j, copy);
            debug_assert!(!self.dead[rid.0 as usize], "dead request started");
            debug_assert_eq!(self.copy_state(j, copy).phase, CopyPhase::Queued);
            self.copy_mut(j, copy).phase = CopyPhase::Running { start: now };
            self.engine
                .schedule(now + plan.runtime, Event::Complete { req: rid.0 });
            if self.cancel_on_completion {
                // Completion race: concurrent executions are the
                // protocol, not zombies — cancels go out when the first
                // copy *finishes* (handle_complete_faulty). A start after
                // the job is done means a cancel was late or lost: that
                // execution is a zombie as usual.
                if self.states[j].done {
                    self.result.zombie_starts += 1;
                } else if self.states[j].started.is_none() {
                    self.states[j].started = Some((plan.target, now));
                    self.states[j].winner = Some(copy);
                }
            } else if self.states[j].started.is_none() && !self.states[j].done {
                self.states[j].started = Some((plan.target, now));
                self.states[j].winner = Some(copy);
                self.send_cancels(now, j, copy);
            } else {
                self.result.zombie_starts += 1;
            }
            self.note_queue(plan.target);
        }
    }

    /// Drains the start worklist: commits job starts, cancels siblings,
    /// revokes starts whose job already began elsewhere, and follows any
    /// cascade of new starts those actions release.
    fn commit_starts(&mut self, now: SimTime) {
        if self.faults.is_some() {
            self.commit_starts_faulty(now);
            return;
        }
        if self.cancel_on_completion {
            self.commit_starts_racing(now);
            return;
        }
        while let Some(rid) = self.worklist.pop_front() {
            let j = self.reqs[rid.0 as usize].job as usize;
            let plan = self.plan_of(rid);
            if self.states[j].started.is_some() {
                // Lost the same-instant race: revoke.
                self.result.aborts += 1;
                self.scratch.clear();
                self.scheds.abort(now, plan.target, rid, &mut self.scratch);
                self.worklist.extend(self.scratch.drain(..));
                continue;
            }
            // Commit: the job starts here, now.
            self.states[j].started = Some((plan.target, now));
            self.engine
                .schedule(now + plan.runtime, Event::Complete { req: rid.0 });
            // The callback: cancel every sibling copy. The job's request
            // ids are contiguous, so the sibling set is just an id range —
            // no snapshot needed (cancels never add or remove requests).
            let first = self.states[j].req_first;
            let count = self.states[j].req_count as u64;
            for id2 in first..first + count {
                let rid2 = RequestId(id2);
                if rid2 == rid {
                    continue;
                }
                let target2 = self.plan_of(rid2).target;
                self.scratch.clear();
                if self.scheds.cancel(now, target2, rid2, &mut self.scratch) {
                    self.result.cancels += 1;
                }
                self.worklist.extend(self.scratch.drain(..));
                self.note_queue(target2);
            }
        }
    }

    fn note_queue(&mut self, c: usize) {
        let len = self.scheds.queue_len(c);
        if len > self.result.max_queue_len[c] {
            self.result.max_queue_len[c] = len;
        }
    }
}
