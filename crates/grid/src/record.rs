//! Per-job outcomes and the metrics derived from them.

use rbr_simcore::{Duration, SimTime};
use rbr_stats::Summary;

/// What happened to one job.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobRecord {
    /// Job index within the run.
    pub job: usize,
    /// Cluster the job arrived at.
    pub home: usize,
    /// Cluster the winning request ran on.
    pub ran_on: usize,
    /// Nodes used.
    pub nodes: u32,
    /// Submission instant.
    pub arrival: SimTime,
    /// Execution start instant.
    pub start: SimTime,
    /// Completion instant.
    pub completion: SimTime,
    /// Actual runtime.
    pub runtime: Duration,
    /// True if the job submitted more than one request.
    pub redundant: bool,
    /// Number of requests submitted (1 for non-redundant jobs).
    pub copies: u32,
    /// Queue wait forecast at submission: the minimum predicted wait over
    /// all of the job's requests (Section 5). `None` if prediction
    /// collection was off.
    pub predicted_wait: Option<Duration>,
}

impl JobRecord {
    /// Queue waiting time.
    pub fn wait(&self) -> Duration {
        self.start.since(self.arrival)
    }

    /// Turnaround time (wait + runtime).
    pub fn turnaround(&self) -> Duration {
        self.completion.since(self.arrival)
    }

    /// Stretch (slowdown): turnaround divided by runtime; ≥ 1.
    pub fn stretch(&self) -> f64 {
        self.turnaround() / self.runtime
    }
}

/// Everything a single grid run produces.
#[derive(Clone, Debug, Default)]
pub struct RunResult {
    /// One record per job, in job order.
    pub records: Vec<JobRecord>,
    /// Maximum queue length observed at each submission target (§4.1's
    /// queue-growth question). One entry per cluster (multi-cluster) or
    /// per queue (dual-queue).
    pub max_queue_len: Vec<usize>,
    /// Sizes of the distinct node pools behind the run: one entry per
    /// cluster, or a single entry when several queues share one pool.
    pub pool_nodes: Vec<u32>,
    /// Requests actually submitted to schedulers.
    pub submits: u64,
    /// Cancellations delivered to schedulers (losing redundant copies).
    pub cancels: u64,
    /// Starts revoked because the job had already begun elsewhere at the
    /// same instant.
    pub aborts: u64,
    /// Instant the last job completed.
    pub makespan: SimTime,
    /// Events processed by the engine.
    pub events: u64,
    /// Backfilled (out-of-order) starts summed over all schedulers.
    pub backfills: u64,
    /// Copies that began executing after their job had already started
    /// (or finished) elsewhere — possible only with faulty middleware,
    /// where the cancellation callback is late or lost.
    pub zombie_starts: u64,
    /// Node-seconds consumed by work that was thrown away: zombie
    /// execution and partial runs killed by outages.
    pub wasted_node_secs: f64,
    /// Submission delivery attempts lost by the middleware.
    pub lost_submits: u64,
    /// Cancellation messages lost by the middleware.
    pub lost_cancels: u64,
    /// Remote copies dropped after exhausting submission retries.
    pub dropped_copies: u64,
    /// Requests destroyed by cluster outages (queued evaporated plus
    /// running killed).
    pub outage_kills: u64,
    /// Batched cancel transactions dispatched (0 unless
    /// `FaultSpec::cancel_batch` enables batching; each transaction
    /// carries one or more cancel ops).
    pub cancel_batches: u64,
}

/// Which jobs to include in a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobClass {
    /// Every job.
    All,
    /// Only jobs that used redundant requests ("r jobs").
    Redundant,
    /// Only jobs that did not ("n-r jobs").
    NonRedundant,
}

impl RunResult {
    fn select(&self, class: JobClass) -> impl Iterator<Item = &JobRecord> {
        self.records.iter().filter(move |r| match class {
            JobClass::All => true,
            JobClass::Redundant => r.redundant,
            JobClass::NonRedundant => !r.redundant,
        })
    }

    /// Summary of job stretches over a class of jobs.
    pub fn stretch(&self, class: JobClass) -> Summary {
        let mut s = Summary::new();
        for r in self.select(class) {
            s.push(r.stretch());
        }
        s
    }

    /// Summary of turnaround times (seconds) over a class of jobs.
    pub fn turnaround(&self, class: JobClass) -> Summary {
        let mut s = Summary::new();
        for r in self.select(class) {
            s.push(r.turnaround().as_secs());
        }
        s
    }

    /// Summary of queue waits (seconds) over a class of jobs.
    pub fn wait(&self, class: JobClass) -> Summary {
        let mut s = Summary::new();
        for r in self.select(class) {
            s.push(r.wait().as_secs());
        }
        s
    }

    /// Summary of the prediction over-estimation ratio
    /// `predicted wait / effective wait` over a class of jobs, with both
    /// waits floored at `floor` to keep the ratio finite for jobs that
    /// start instantly (the paper does not state its handling; see
    /// DESIGN.md).
    ///
    /// Jobs without a recorded prediction are skipped.
    pub fn prediction_ratio(&self, class: JobClass, floor: Duration) -> Summary {
        assert!(!floor.is_zero(), "prediction floor must be positive");
        let mut s = Summary::new();
        for r in self.select(class) {
            if let Some(pred) = r.predicted_wait {
                let predicted = pred.max(floor);
                let effective = r.wait().max(floor);
                s.push(predicted / effective);
            }
        }
        s
    }

    /// The largest stretch over a class of jobs (the paper's alternative
    /// fairness metric).
    pub fn max_stretch(&self, class: JobClass) -> f64 {
        self.select(class)
            .map(|r| r.stretch())
            .fold(f64::NAN, f64::max)
    }

    /// Total node-seconds of work completed.
    pub fn total_work(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.nodes as f64 * r.runtime.as_secs())
            .sum()
    }

    /// Every node-second the run accounts for: useful work delivered to
    /// the winning copies plus the wasted node-seconds of zombies and
    /// killed partial runs. The invariant auditor compares this ledger
    /// against the node-occupancy it observed at the schedulers.
    pub fn accounted_node_secs(&self) -> f64 {
        self.total_work() + self.wasted_node_secs
    }

    /// Wasted node-seconds as a fraction of the useful work delivered —
    /// 0 under perfect middleware, where no copy ever executes twice.
    pub fn waste_fraction(&self) -> f64 {
        let useful = self.total_work();
        if useful > 0.0 {
            self.wasted_node_secs / useful
        } else {
            0.0
        }
    }

    /// Useful work delivered over the total capacity offered during the
    /// run: `total_work / (Σ pool nodes × makespan)`. Returns 0 for an
    /// empty run (no capacity recorded or zero makespan).
    pub fn overall_utilization(&self) -> f64 {
        let capacity: f64 = self.pool_nodes.iter().map(|&n| n as f64).sum();
        let horizon = self.makespan.as_secs();
        if capacity > 0.0 && horizon > 0.0 {
            self.total_work() / (capacity * horizon)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arrival: f64, start: f64, runtime: f64, redundant: bool) -> JobRecord {
        JobRecord {
            job: 0,
            home: 0,
            ran_on: 0,
            nodes: 2,
            arrival: SimTime::from_secs(arrival),
            start: SimTime::from_secs(start),
            completion: SimTime::from_secs(start + runtime),
            runtime: Duration::from_secs(runtime),
            redundant,
            copies: if redundant { 3 } else { 1 },
            predicted_wait: None,
        }
    }

    #[test]
    fn stretch_definition() {
        let r = rec(0.0, 90.0, 10.0, false);
        assert_eq!(r.wait(), Duration::from_secs(90.0));
        assert_eq!(r.turnaround(), Duration::from_secs(100.0));
        assert!((r.stretch() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_wait_job_has_stretch_one() {
        let r = rec(5.0, 5.0, 10.0, true);
        assert!((r.stretch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn class_filters() {
        let result = RunResult {
            records: vec![
                rec(0.0, 10.0, 10.0, true),  // stretch 2
                rec(0.0, 30.0, 10.0, false), // stretch 4
                rec(0.0, 70.0, 10.0, false), // stretch 8
            ],
            ..Default::default()
        };
        assert_eq!(result.stretch(JobClass::All).n(), 3);
        assert!((result.stretch(JobClass::Redundant).mean() - 2.0).abs() < 1e-12);
        assert!((result.stretch(JobClass::NonRedundant).mean() - 6.0).abs() < 1e-12);
        assert!((result.max_stretch(JobClass::All) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn prediction_ratio_uses_floor() {
        let mut r = rec(0.0, 0.0, 10.0, false); // zero wait
        r.predicted_wait = Some(Duration::from_secs(100.0));
        let result = RunResult {
            records: vec![r],
            ..Default::default()
        };
        let s = result.prediction_ratio(JobClass::All, Duration::from_secs(1.0));
        assert_eq!(s.n(), 1);
        assert!((s.mean() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn prediction_ratio_skips_missing() {
        let result = RunResult {
            records: vec![rec(0.0, 5.0, 10.0, false)],
            ..Default::default()
        };
        let s = result.prediction_ratio(JobClass::All, Duration::from_secs(1.0));
        assert!(s.is_empty());
    }

    #[test]
    fn total_work_sums_areas() {
        let result = RunResult {
            records: vec![rec(0.0, 0.0, 10.0, false), rec(0.0, 0.0, 5.0, false)],
            ..Default::default()
        };
        assert_eq!(result.total_work(), 2.0 * 10.0 + 2.0 * 5.0);
    }
}

/// Per-cluster utilization and balance metrics (computed from records).
#[derive(Clone, Debug)]
pub struct UtilizationReport {
    /// Node-seconds of completed work per cluster.
    pub work: Vec<f64>,
    /// Utilization per cluster: work ÷ (nodes × makespan).
    pub utilization: Vec<f64>,
    /// Jain's fairness index over per-cluster utilizations — 1 means
    /// perfectly balanced load, 1/N means all work on one cluster.
    pub balance_index: f64,
}

impl RunResult {
    /// Computes per-cluster utilization over the full run, given the
    /// cluster sizes used in the simulation.
    ///
    /// # Panics
    /// Panics if `nodes_per_cluster` does not match the platform size or
    /// the run is empty.
    pub fn utilization(&self, nodes_per_cluster: &[u32]) -> UtilizationReport {
        assert_eq!(
            nodes_per_cluster.len(),
            self.max_queue_len.len(),
            "cluster count mismatch"
        );
        assert!(!self.records.is_empty(), "empty run has no utilization");
        let horizon = self.makespan.as_secs().max(1e-9);
        let mut work = vec![0.0; nodes_per_cluster.len()];
        for r in &self.records {
            work[r.ran_on] += r.nodes as f64 * r.runtime.as_secs();
        }
        let utilization: Vec<f64> = work
            .iter()
            .zip(nodes_per_cluster)
            .map(|(w, &n)| w / (n as f64 * horizon))
            .collect();
        let balance_index = rbr_stats::jain_index(&utilization);
        UtilizationReport {
            work,
            utilization,
            balance_index,
        }
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;

    fn rec_on(cluster: usize, nodes: u32, runtime: f64) -> JobRecord {
        JobRecord {
            job: 0,
            home: cluster,
            ran_on: cluster,
            nodes,
            arrival: SimTime::ZERO,
            start: SimTime::ZERO,
            completion: SimTime::from_secs(runtime),
            runtime: Duration::from_secs(runtime),
            redundant: false,
            copies: 1,
            predicted_wait: None,
        }
    }

    #[test]
    fn utilization_is_work_over_capacity() {
        let result = RunResult {
            records: vec![rec_on(0, 10, 100.0), rec_on(1, 5, 100.0)],
            max_queue_len: vec![0, 0],
            makespan: SimTime::from_secs(100.0),
            ..Default::default()
        };
        let u = result.utilization(&[10, 10]);
        assert!((u.utilization[0] - 1.0).abs() < 1e-12);
        assert!((u.utilization[1] - 0.5).abs() < 1e-12);
        // Jain index of (1.0, 0.5): (1.5)^2 / (2 × 1.25) = 0.9.
        assert!((u.balance_index - 0.9).abs() < 1e-12);
    }

    #[test]
    fn perfectly_balanced_load_has_index_one() {
        let result = RunResult {
            records: vec![rec_on(0, 4, 50.0), rec_on(1, 4, 50.0)],
            max_queue_len: vec![0, 0],
            makespan: SimTime::from_secs(50.0),
            ..Default::default()
        };
        let u = result.utilization(&[8, 8]);
        assert!((u.balance_index - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overall_utilization_uses_pool_capacity() {
        let result = RunResult {
            records: vec![rec_on(0, 10, 100.0), rec_on(1, 5, 100.0)],
            max_queue_len: vec![0, 0],
            pool_nodes: vec![10, 10],
            makespan: SimTime::from_secs(100.0),
            ..Default::default()
        };
        // 1500 node-seconds of work over 20 nodes × 100 s of capacity.
        assert!((result.overall_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(RunResult::default().overall_utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_cluster_count_rejected() {
        let result = RunResult {
            records: vec![rec_on(0, 1, 1.0)],
            max_queue_len: vec![0],
            makespan: SimTime::from_secs(1.0),
            ..Default::default()
        };
        let _ = result.utilization(&[4, 4]);
    }
}

impl RunResult {
    /// Number of jobs pending (arrived but not started) at instant `t`.
    pub fn pending_at(&self, t: SimTime) -> usize {
        self.records
            .iter()
            .filter(|r| r.arrival <= t && r.start > t)
            .count()
    }

    /// Average queue growth in jobs per hour over `[0, window)`, the
    /// paper's §4.1 figure ("the queue of a batch scheduler grows by
    /// about 700 jobs per hour during so-called 'peak' hours"): pending
    /// jobs at the end of the submission window divided by its length.
    /// This counts *jobs*; with redundancy each pending job additionally
    /// occupies one queue slot per live copy.
    pub fn queue_growth_per_hour(&self, window: Duration) -> f64 {
        assert!(!window.is_zero(), "window must be positive");
        let end = SimTime::ZERO + window;
        self.pending_at(end) as f64 / (window.as_secs() / 3_600.0)
    }
}

#[cfg(test)]
mod growth_tests {
    use super::*;

    fn rec_span(arrival: f64, start: f64) -> JobRecord {
        JobRecord {
            job: 0,
            home: 0,
            ran_on: 0,
            nodes: 1,
            arrival: SimTime::from_secs(arrival),
            start: SimTime::from_secs(start),
            completion: SimTime::from_secs(start + 10.0),
            runtime: Duration::from_secs(10.0),
            redundant: false,
            copies: 1,
            predicted_wait: None,
        }
    }

    #[test]
    fn pending_counts_waiting_jobs() {
        let result = RunResult {
            records: vec![
                rec_span(0.0, 100.0), // pending during (0, 100)
                rec_span(10.0, 20.0), // pending during (10, 20)
                rec_span(200.0, 210.0),
            ],
            ..Default::default()
        };
        assert_eq!(result.pending_at(SimTime::from_secs(15.0)), 2);
        assert_eq!(result.pending_at(SimTime::from_secs(50.0)), 1);
        assert_eq!(result.pending_at(SimTime::from_secs(150.0)), 0);
    }

    #[test]
    fn growth_rate_is_pending_at_window_end() {
        let result = RunResult {
            // 3 jobs still pending at t = 3600 s.
            records: (0..3).map(|i| rec_span(i as f64, 10_000.0)).collect(),
            ..Default::default()
        };
        let rate = result.queue_growth_per_hour(Duration::from_secs(3_600.0));
        assert!((rate - 3.0).abs() < 1e-12);
    }
}
