//! Property tests for the distribution samplers: support bounds hold for
//! arbitrary parameters and seeds.

use proptest::prelude::*;
use rand::SeedableRng;
use rbr_dist::{Exponential, Gamma, HyperGamma, Sample, TwoStageUniform, UniformRange};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gamma_samples_are_positive(shape in 0.05f64..50.0, scale in 0.01f64..100.0, seed in 0u64..1_000) {
        let d = Gamma::new(shape, scale);
        let mut r = rng(seed);
        for _ in 0..200 {
            let x = d.sample(&mut r);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    fn uniform_samples_stay_in_support(lo in -1e5f64..1e5, width in 0.0f64..1e5, seed in 0u64..1_000) {
        let d = UniformRange::new(lo, lo + width);
        let mut r = rng(seed);
        for _ in 0..200 {
            let x = d.sample(&mut r);
            prop_assert!(x >= lo && x <= lo + width);
        }
    }

    #[test]
    fn two_stage_samples_stay_in_support(
        lo in 0.0f64..5.0,
        d1 in 0.0f64..5.0,
        d2 in 0.0f64..5.0,
        prob in 0.0f64..=1.0,
        seed in 0u64..1_000,
    ) {
        let (med, hi) = (lo + d1, lo + d1 + d2);
        let d = TwoStageUniform::new(lo, med, hi, prob);
        let mut r = rng(seed);
        for _ in 0..200 {
            let x = d.sample(&mut r);
            prop_assert!(x >= lo && x <= hi);
        }
    }

    #[test]
    fn exponential_samples_are_positive(rate in 0.001f64..1_000.0, seed in 0u64..1_000) {
        let d = Exponential::new(rate);
        let mut r = rng(seed);
        for _ in 0..200 {
            let x = d.sample(&mut r);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    fn hyper_gamma_mean_is_between_component_means(
        a1 in 0.5f64..20.0, b1 in 0.05f64..5.0,
        a2 in 0.5f64..20.0, b2 in 0.05f64..5.0,
        p in 0.0f64..=1.0,
    ) {
        let hg = HyperGamma::new(a1, b1, a2, b2, p);
        let lo = (a1 * b1).min(a2 * b2);
        let hi = (a1 * b1).max(a2 * b2);
        prop_assert!(hg.mean() >= lo - 1e-12 && hg.mean() <= hi + 1e-12);
    }

    /// Identical seeds give identical streams for every sampler — the
    /// reproducibility contract the experiments rely on.
    #[test]
    fn sampling_is_deterministic(shape in 0.1f64..30.0, seed in 0u64..1_000) {
        let d = Gamma::new(shape, 1.0);
        let mut a = rng(seed);
        let mut b = rng(seed);
        for _ in 0..50 {
            prop_assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
