//! Uniform distribution over an arbitrary closed-open interval.

use rand::Rng;

use crate::{u01, Sample};

/// Uniform over `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Creates a uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo <= hi` and both bounds are finite. A degenerate
    /// interval (`lo == hi`) is allowed and always yields `lo`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform range [{lo}, {hi})"
        );
        UniformRange { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Sample for UniformRange {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * u01(rng)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::SeedSequence;

    #[test]
    fn samples_stay_in_range() {
        let d = UniformRange::new(2.0, 20.0);
        let mut rng = SeedSequence::new(3).rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..20.0).contains(&x));
        }
    }

    #[test]
    fn empirical_mean_matches() {
        let d = UniformRange::new(-5.0, 5.0);
        let mut rng = SeedSequence::new(4).rng();
        let n = 100_000;
        let m: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - d.mean()).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn degenerate_interval_is_constant() {
        let d = UniformRange::new(7.0, 7.0);
        let mut rng = SeedSequence::new(5).rng();
        assert_eq!(d.sample(&mut rng), 7.0);
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn inverted_bounds_rejected() {
        let _ = UniformRange::new(3.0, 1.0);
    }
}
