//! Two-stage uniform distribution.
//!
//! The Lublin–Feitelson node-count model works in log₂ space: with
//! probability `prob` the log-size is uniform over `[lo, med]`, otherwise
//! uniform over `[med, hi]`. Weighting the lower band models the
//! observation that most parallel jobs are small while a minority spans a
//! large fraction of the machine.

use rand::Rng;

use crate::uniform::UniformRange;
use crate::{u01, Sample};

/// With probability `prob`, uniform over `[lo, med)`; otherwise uniform
/// over `[med, hi)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoStageUniform {
    low_band: UniformRange,
    high_band: UniformRange,
    prob: f64,
}

impl TwoStageUniform {
    /// Creates a two-stage uniform distribution.
    ///
    /// # Panics
    /// Panics unless `lo <= med <= hi` and `prob ∈ [0, 1]`.
    pub fn new(lo: f64, med: f64, hi: f64, prob: f64) -> Self {
        assert!(
            lo <= med && med <= hi,
            "two-stage breakpoints must be ordered: {lo} <= {med} <= {hi}"
        );
        assert!(
            (0.0..=1.0).contains(&prob),
            "stage probability must be in [0, 1], got {prob}"
        );
        TwoStageUniform {
            low_band: UniformRange::new(lo, med),
            high_band: UniformRange::new(med, hi),
            prob,
        }
    }

    /// Probability of drawing from the lower band.
    pub fn prob(&self) -> f64 {
        self.prob
    }

    /// Overall support bounds `(lo, hi)`.
    pub fn bounds(&self) -> (f64, f64) {
        (self.low_band.lo(), self.high_band.hi())
    }
}

impl Sample for TwoStageUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if u01(rng) < self.prob {
            self.low_band.sample(rng)
        } else {
            self.high_band.sample(rng)
        }
    }

    fn mean(&self) -> f64 {
        self.prob * self.low_band.mean() + (1.0 - self.prob) * self.high_band.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::SeedSequence;

    #[test]
    fn samples_respect_support() {
        let d = TwoStageUniform::new(0.8, 4.5, 7.0, 0.86);
        let mut rng = SeedSequence::new(19).rng();
        for _ in 0..20_000 {
            let x = d.sample(&mut rng);
            assert!((0.8..7.0).contains(&x));
        }
    }

    #[test]
    fn band_weights_are_respected() {
        let d = TwoStageUniform::new(0.0, 1.0, 2.0, 0.86);
        let mut rng = SeedSequence::new(20).rng();
        let n = 100_000;
        let low = (0..n).filter(|_| d.sample(&mut rng) < 1.0).count();
        let frac = low as f64 / n as f64;
        assert!((frac - 0.86).abs() < 0.01, "low-band fraction {frac}");
    }

    #[test]
    fn empirical_mean_matches() {
        let d = TwoStageUniform::new(0.8, 4.5, 7.0, 0.86);
        let mut rng = SeedSequence::new(21).rng();
        let n = 200_000;
        let m: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - d.mean()).abs() < 0.02, "mean {m} vs {}", d.mean());
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn unordered_breakpoints_rejected() {
        let _ = TwoStageUniform::new(0.0, 5.0, 3.0, 0.5);
    }
}
