//! Gamma distribution via the Marsaglia–Tsang (2000) squeeze method.
//!
//! The workload model uses Gamma variates in two places: job interarrival
//! times (the paper's peak-hour model, α = 10.23, β = 0.49, mean
//! α·β = 5.01 s) and the hyper-Gamma runtime mixture.

use rand::Rng;

use crate::normal::Normal;
use crate::{u01_open, Sample};

/// Gamma distribution with shape `α` and scale `θ` (mean `α·θ`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a Gamma distribution with the given shape and scale.
    ///
    /// # Panics
    /// Panics unless both parameters are finite and strictly positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "gamma shape must be positive, got {shape}"
        );
        assert!(
            scale.is_finite() && scale > 0.0,
            "gamma scale must be positive, got {scale}"
        );
        Gamma { shape, scale }
    }

    /// The shape parameter α.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter θ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The analytic variance `α·θ²`.
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Marsaglia–Tsang sampler for shape ≥ 1, unit scale.
    fn sample_large_shape<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        debug_assert!(shape >= 1.0);
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Reject x with 1 + c·x ≤ 0 (v must be positive).
            let (x, v) = loop {
                let x = Normal::standard_sample(rng);
                let t = 1.0 + c * x;
                if t > 0.0 {
                    break (x, t * t * t);
                }
            };
            let u = u01_open(rng);
            // Cheap squeeze first, exact log test second.
            if u < 1.0 - 0.0331 * x * x * x * x {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Sample for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = if self.shape >= 1.0 {
            Self::sample_large_shape(self.shape, rng)
        } else {
            // Boost: Gamma(α) = Gamma(α + 1) · U^{1/α} for α < 1.
            let g = Self::sample_large_shape(self.shape + 1.0, rng);
            g * u01_open(rng).powf(1.0 / self.shape)
        };
        z * self.scale
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::SeedSequence;

    fn empirical_moments(d: &Gamma, seed: u64, n: usize) -> (f64, f64) {
        let mut rng = SeedSequence::new(seed).rng();
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        (m, var)
    }

    #[test]
    fn paper_interarrival_parameters() {
        // α = 10.23, β = 0.49 → mean 5.01 s (paper, Section 3.3).
        let d = Gamma::new(10.23, 0.49);
        assert!((d.mean() - 5.0127).abs() < 1e-9);
        let (m, _) = empirical_moments(&d, 11, 200_000);
        assert!((m - 5.0127).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn moments_match_for_large_shape() {
        let d = Gamma::new(4.2, 0.94);
        let (m, v) = empirical_moments(&d, 12, 200_000);
        assert!((m - d.mean()).abs() < 0.03, "mean {m} vs {}", d.mean());
        assert!(
            (v - d.variance()).abs() / d.variance() < 0.03,
            "var {v} vs {}",
            d.variance()
        );
    }

    #[test]
    fn moments_match_for_small_shape() {
        let d = Gamma::new(0.45, 2.0);
        let (m, v) = empirical_moments(&d, 13, 400_000);
        assert!((m - d.mean()).abs() < 0.02, "mean {m} vs {}", d.mean());
        assert!(
            (v - d.variance()).abs() / d.variance() < 0.05,
            "var {v} vs {}",
            d.variance()
        );
    }

    #[test]
    fn samples_are_positive() {
        for &shape in &[0.3, 1.0, 2.5, 10.23, 312.0] {
            let d = Gamma::new(shape, 1.0);
            let mut rng = SeedSequence::new(14).rng();
            for _ in 0..5_000 {
                assert!(d.sample(&mut rng) > 0.0, "shape {shape}");
            }
        }
    }

    /// Cross-validation against the `rand_distr` oracle: compare empirical
    /// CDFs on a common grid (two-sample Kolmogorov–Smirnov style check).
    #[test]
    fn matches_rand_distr_oracle() {
        use rand_distr::Distribution as _;
        for &(shape, scale) in &[(0.5, 1.0), (2.0, 3.0), (10.23, 0.49)] {
            let ours = Gamma::new(shape, scale);
            let oracle = rand_distr::Gamma::new(shape, scale).unwrap();
            let n = 60_000;
            let mut rng_a = SeedSequence::new(15).rng();
            let mut rng_b = SeedSequence::new(16).rng();
            let mut a: Vec<f64> = (0..n).map(|_| ours.sample(&mut rng_a)).collect();
            let mut b: Vec<f64> = (0..n).map(|_| oracle.sample(&mut rng_b)).collect();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            // KS statistic over the merged sample grid.
            let mut d_max: f64 = 0.0;
            let (mut i, mut j) = (0usize, 0usize);
            while i < n && j < n {
                if a[i] <= b[j] {
                    i += 1;
                } else {
                    j += 1;
                }
                d_max = d_max.max((i as f64 - j as f64).abs() / n as f64);
            }
            // Critical value at α = 0.001 for two samples of size n:
            // c(α)·sqrt(2/n), c(0.001) ≈ 1.949.
            let crit = 1.949 * (2.0 / n as f64).sqrt();
            assert!(
                d_max < crit,
                "KS statistic {d_max} ≥ {crit} for shape {shape}, scale {scale}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_shape_rejected() {
        let _ = Gamma::new(-1.0, 1.0);
    }
}
