//! Normal distribution via the Marsaglia polar method.

use rand::Rng;

use crate::{u01, Sample};

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    /// Panics unless `sd` is finite and non-negative and `mean` is finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(mean.is_finite(), "normal mean must be finite, got {mean}");
        assert!(
            sd.is_finite() && sd >= 0.0,
            "normal sd must be non-negative, got {sd}"
        );
        Normal { mean, sd }
    }

    /// The standard normal N(0, 1).
    pub fn standard() -> Self {
        Normal { mean: 0.0, sd: 1.0 }
    }

    /// Draws one standard-normal variate.
    ///
    /// The polar method produces variates in pairs; the second is
    /// discarded to keep the sampler stateless, trading a little
    /// efficiency for reproducibility that does not depend on call
    /// pairing.
    pub fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u = 2.0 * u01(rng) - 1.0;
            let v = 2.0 * u01(rng) - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Sample for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * Self::standard_sample(rng)
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::SeedSequence;

    #[test]
    fn empirical_moments_match() {
        let d = Normal::new(3.0, 2.0);
        let mut rng = SeedSequence::new(8).rng();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - 3.0).abs() < 0.02, "mean {m}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn zero_sd_is_constant() {
        let d = Normal::new(1.5, 0.0);
        let mut rng = SeedSequence::new(9).rng();
        assert_eq!(d.sample(&mut rng), 1.5);
    }

    #[test]
    fn standard_is_roughly_symmetric() {
        let mut rng = SeedSequence::new(10).rng();
        let n = 100_000;
        let positives = (0..n)
            .filter(|_| Normal::standard_sample(&mut rng) > 0.0)
            .count();
        let frac = positives as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "fraction positive {frac}");
    }
}
