//! Hyper-Gamma distribution: a two-component Gamma mixture.
//!
//! The Lublin–Feitelson model draws job runtimes from a hyper-Gamma
//! distribution whose mixture weight `p` (the probability of the *first*
//! component) depends linearly on the job's node count — larger jobs lean
//! towards the long-running component.

use rand::Rng;

use crate::gamma::Gamma;
use crate::{u01, Sample};

/// Mixture `p·Gamma(a₁, b₁) + (1 − p)·Gamma(a₂, b₂)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HyperGamma {
    first: Gamma,
    second: Gamma,
    p: f64,
}

impl HyperGamma {
    /// Creates a hyper-Gamma distribution.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1]` (component parameters are validated by
    /// [`Gamma::new`]).
    pub fn new(a1: f64, b1: f64, a2: f64, b2: f64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "mixture probability must be in [0, 1], got {p}"
        );
        HyperGamma {
            first: Gamma::new(a1, b1),
            second: Gamma::new(a2, b2),
            p,
        }
    }

    /// The probability of sampling from the first component.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The first Gamma component.
    pub fn first(&self) -> Gamma {
        self.first
    }

    /// The second Gamma component.
    pub fn second(&self) -> Gamma {
        self.second
    }

    /// Returns a copy with a different mixture probability — this is how
    /// the workload model applies the per-job `p(n) = pa·n + pb` rule
    /// without rebuilding the components.
    pub fn with_p(&self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "mixture probability must be in [0, 1], got {p}"
        );
        HyperGamma { p, ..*self }
    }
}

impl Sample for HyperGamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if u01(rng) < self.p {
            self.first.sample(rng)
        } else {
            self.second.sample(rng)
        }
    }

    fn mean(&self) -> f64 {
        self.p * self.first.mean() + (1.0 - self.p) * self.second.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::SeedSequence;

    #[test]
    fn degenerate_p_selects_single_component() {
        let mut rng = SeedSequence::new(17).rng();
        let hg = HyperGamma::new(2.0, 1.0, 200.0, 1.0, 1.0);
        // With p = 1 every sample comes from Gamma(2, 1): mean 2, so values
        // above 50 are (astronomically) improbable.
        for _ in 0..20_000 {
            assert!(hg.sample(&mut rng) < 50.0);
        }
        let hg0 = hg.with_p(0.0);
        // With p = 0 every sample comes from Gamma(200, 1): tightly
        // concentrated near 200.
        for _ in 0..20_000 {
            assert!(hg0.sample(&mut rng) > 100.0);
        }
    }

    #[test]
    fn empirical_mean_matches_mixture() {
        let hg = HyperGamma::new(4.2, 0.94, 312.0, 0.03, 0.7);
        let mut rng = SeedSequence::new(18).rng();
        let n = 300_000;
        let m: f64 = (0..n).map(|_| hg.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (m - hg.mean()).abs() / hg.mean() < 0.01,
            "mean {m} vs {}",
            hg.mean()
        );
    }

    #[test]
    fn with_p_keeps_components() {
        let hg = HyperGamma::new(1.0, 2.0, 3.0, 4.0, 0.5);
        let hg2 = hg.with_p(0.25);
        assert_eq!(hg2.first(), hg.first());
        assert_eq!(hg2.second(), hg.second());
        assert_eq!(hg2.p(), 0.25);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn invalid_p_rejected() {
        let _ = HyperGamma::new(1.0, 1.0, 1.0, 1.0, 1.5);
    }
}
