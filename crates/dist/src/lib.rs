//! # rbr-dist
//!
//! The continuous distributions needed by the Lublin–Feitelson batch
//! workload model, implemented from scratch so the simulator has no
//! statistical dependencies:
//!
//! * [`Gamma`] — Marsaglia–Tsang squeeze sampler (with the `U^{1/α}` boost
//!   for shape < 1).
//! * [`HyperGamma`] — a two-component Gamma mixture; the paper's runtime
//!   model draws the mixture weight from the job's node count.
//! * [`TwoStageUniform`] — uniform over `[lo, med]` with probability
//!   `prob`, else uniform over `[med, hi]`; the paper's node-count model in
//!   log₂ space.
//! * [`Exponential`], [`Normal`], [`UniformRange`] — building blocks.
//!
//! Every sampler implements the [`Sample`] trait and is a plain value —
//! no interior state — so samplers can be shared freely across threads and
//! the sequence of variates is a pure function of the generator.

pub mod exponential;
pub mod gamma;
pub mod hyper_gamma;
pub mod normal;
pub mod two_stage;
pub mod uniform;

pub use exponential::Exponential;
pub use gamma::Gamma;
pub use hyper_gamma::HyperGamma;
pub use normal::Normal;
pub use two_stage::TwoStageUniform;
pub use uniform::UniformRange;

use rand::Rng;

/// A distribution over `f64` that can be sampled with any RNG.
pub trait Sample {
    /// Draws one variate.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The analytic mean of the distribution, used in calibration and
    /// tests.
    fn mean(&self) -> f64;
}

/// Draws a `f64` uniform in `[0, 1)`.
#[inline]
pub(crate) fn u01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits; the standard open-right unit uniform.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draws a `f64` uniform in `(0, 1)` (both endpoints excluded), which is
/// required wherever a logarithm of the variate is taken.
#[inline]
pub(crate) fn u01_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = u01(rng);
        if u > 0.0 {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::SeedSequence;

    #[test]
    fn u01_is_in_unit_interval() {
        let mut rng = SeedSequence::new(1).rng();
        for _ in 0..10_000 {
            let u = u01(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn u01_open_never_returns_zero() {
        let mut rng = SeedSequence::new(2).rng();
        for _ in 0..10_000 {
            let u = u01_open(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
