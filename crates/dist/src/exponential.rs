//! Exponential distribution via inverse transform sampling.

use rand::Rng;

use crate::{u01_open, Sample};

/// Exponential distribution with the given rate λ (mean `1/λ`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate`.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and strictly positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        Exponential { rate }
    }

    /// Creates an exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        Exponential { rate: 1.0 / mean }
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -u01_open(rng).ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::SeedSequence;

    #[test]
    fn samples_are_positive() {
        let d = Exponential::new(0.2);
        let mut rng = SeedSequence::new(6).rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn empirical_mean_matches() {
        let d = Exponential::with_mean(5.0);
        let mut rng = SeedSequence::new(7).rng();
        let n = 200_000;
        let m: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Exponential::new(0.0);
    }
}
