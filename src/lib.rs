//! Umbrella crate for the reproduction of Casanova, *On the Harmfulness of
//! Redundant Batch Requests* (HPDC 2006).
//!
//! This package exists to host the runnable `examples/` and the
//! cross-crate integration tests in `tests/`; the library surface is a
//! re-export of [`rbr`], the top-level crate of the workspace.

pub use rbr::*;
