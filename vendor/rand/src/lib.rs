//! Offline shim for the `rand` crate.
//!
//! The build container has no access to a crates registry, so the
//! workspace patches `rand` to this minimal implementation of exactly
//! the API surface the workspace uses: [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64), [`SeedableRng::seed_from_u64`], the [`Rng`]
//! core trait (`next_u32` / `next_u64` / `fill_bytes`), and the
//! [`RngExt`] extension trait (`random::<T>()`, `random_range`).
//!
//! The generator is a different algorithm from upstream `rand`'s ChaCha12
//! `StdRng`, so absolute draw sequences differ from builds against the
//! real crate; everything in this workspace only relies on determinism
//! for a fixed seed and on statistical quality, both of which hold
//! (xoshiro256++ passes BigCrush). See `vendor/README.md`.

/// A generator seedable from a fixed-size state.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it to the full
    /// internal state with SplitMix64 (the upstream-recommended scheme).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core generator interface (upstream `RngCore`, folded into `Rng`
/// here because the workspace only ever bounds on `Rng`).
pub trait Rng {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be drawn uniformly from a generator's raw output
/// (upstream's `StandardUniform` distribution).
pub trait SampleUniform: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                // Multiply-shift rejection-free mapping; the modulo bias
                // over a 64-bit draw is far below anything a simulation
                // or statistical test in this workspace can observe.
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience draws on top of [`Rng`] (upstream 0.9+ naming).
pub trait RngExt: Rng {
    /// A uniform draw of `T` (`u32`/`u64`/`bool`/`f64` in `[0,1)`).
    fn random<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 expansion. Deterministic for a fixed seed, statistically
    /// strong, and fast; *not* the same stream as upstream's ChaCha12.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(2..=17);
            assert!((2..=17).contains(&x));
            let y: usize = rng.random_range(0..3);
            assert!(y < 3);
            let z: f64 = rng.random_range(1.5..2.5);
            assert!((1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn unit_draws_look_uniform() {
        let mut rng = StdRng::seed_from_u64(2024);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
