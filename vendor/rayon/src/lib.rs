//! Offline shim for the `rayon` crate.
//!
//! Implements the one pattern this workspace uses —
//! `collection.into_par_iter().map(f).collect()` — with real parallelism:
//! items are split into contiguous chunks, one per available core, and
//! mapped on scoped `std::thread`s. Output order matches input order, so
//! results are identical to the sequential (and to the real rayon)
//! evaluation. See `vendor/README.md`.

pub mod prelude {
    //! The traits needed for `into_par_iter()` chains.
    pub use crate::{IntoParallelIterator, ParIter};
}

/// Conversion into a (shim) parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item;

    /// Collects the elements eagerly; subsequent `map` fans out on
    /// threads.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;

    fn into_par_iter(self) -> ParIter<C::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// An eagerly evaluated, order-preserving stand-in for rayon's parallel
/// iterators.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The number of worker threads worth spawning for `n` items on a
/// machine with `cores` cores: 0 (run sequentially) unless the input is
/// at least twice the core count, so tiny maps on hot per-replication
/// paths skip thread-spawn overhead entirely — a 2-element map costs two
/// closure calls, not two `std::thread`s.
fn fanout(n: usize, cores: usize) -> usize {
    let cores = cores.max(1);
    if n < 2 * cores {
        return 0;
    }
    cores.min(n)
}

impl<T: Send> ParIter<T> {
    /// Maps every element, fanning the work out over the available cores
    /// in contiguous chunks. Order is preserved. Small inputs (fewer
    /// than two items per core) run sequentially on the caller — the
    /// result is identical either way, and spawning scoped threads for a
    /// 2-element map costs more than the map itself.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = self.items.len();
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let threads = fanout(n, cores);
        if threads <= 1 {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
            };
        }
        // Split the items into per-thread chunks (by value), keeping a
        // parallel vector of output slots to write into.
        let chunk_len = n.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut items = self.items;
        while !items.is_empty() {
            let tail = items.split_off(items.len().saturating_sub(chunk_len));
            chunks.push(tail);
        }
        chunks.reverse(); // split_off peeled chunks from the back
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest: &mut [Option<R>] = &mut results;
            for chunk in chunks {
                let (head, tail) = rest.split_at_mut(chunk.len());
                rest = tail;
                scope.spawn(move || {
                    for (item, slot) in chunk.into_iter().zip(head) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        ParIter {
            items: results
                .into_iter()
                .map(|slot| slot.expect("worker thread filled every slot"))
                .collect(),
        }
    }

    /// Collects the mapped elements, in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_empty_and_tiny_inputs() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn small_inputs_stay_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let n = 2 * cores - 1; // one below the fan-out threshold
        let ids: Vec<_> = (0..n)
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn fanout_threshold_is_two_items_per_core() {
        assert_eq!(super::fanout(0, 4), 0);
        assert_eq!(super::fanout(7, 4), 0, "below 2× cores: sequential");
        assert_eq!(super::fanout(8, 4), 4, "at 2× cores: all cores");
        assert_eq!(super::fanout(100, 4), 4);
        assert_eq!(super::fanout(3, 1), 1, "single core never oversubscribes");
        assert_eq!(super::fanout(2, 0), 1, "zero cores clamps to one lane");
    }
}
