//! Offline shim for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! record types but serializes through its own hand-rolled JSON/CSV
//! writers, so the traits here are empty markers and the derives (from
//! the sibling `serde_derive` shim) expand to nothing. If real serde
//! serialization is ever needed, replace these shims with the actual
//! crates. See `vendor/README.md`.

/// Marker stand-in for serde's `Serialize` trait.
pub trait Serialize {}

/// Marker stand-in for serde's `Deserialize` trait.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
