//! Offline shim for the `criterion` crate.
//!
//! Implements the surface this workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros — as a simple wall-clock harness: each benchmark is warmed up
//! once, timed over `samples` batches, and the median batch time is
//! printed. No statistics, plots, or baselines; numbers are indicative
//! only. See `vendor/README.md`.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to `criterion_group!` target functions.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First CLI arg (as the real crate does) filters benchmarks by
        // substring; `--bench`-style flags are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            filter: self.filter.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// A named collection of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    filter: Option<String>,
    // Ties the group's lifetime to the `Criterion` it came from, matching
    // the real API's signature.
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times `f` and prints the median per-iteration wall-clock time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for sample in 0..=self.samples {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if sample > 0 {
                // Sample 0 is warm-up.
                times.push(if b.iters > 0 {
                    b.elapsed / b.iters as u32
                } else {
                    Duration::ZERO
                });
            }
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        println!("{full:<48} median {median:>12.3?} ({} samples)", times.len());
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(&mut self) {}
}

/// Passed to the closure given to `bench_function`; runs the payload.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = <$crate::Criterion as ::core::default::Default>::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_payload() {
        let mut calls = 0u64;
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(2).bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut calls = 0u64;
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("shim");
        group.bench_function("skipped", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
    }
}
