//! Offline shim for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! annotations (its own report writers hand-roll JSON/CSV), so these
//! derives expand to nothing. See `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
