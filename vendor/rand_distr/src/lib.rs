//! Offline shim for the `rand_distr` crate.
//!
//! Provides only what the workspace uses: the [`Distribution`] trait and
//! a correct [`Gamma`] sampler (Marsaglia–Tsang squeeze method, with the
//! standard boost for shape < 1), which `rbr-dist` cross-validates its
//! own Gamma implementation against. See `vendor/README.md`.

use rand::Rng;

/// Types that sample values of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by distribution constructors on invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

#[inline]
fn unit_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Uniform in (0, 1): never 0, so logs are finite.
    ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// One standard-normal draw via the Marsaglia polar method.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * unit_open(rng) - 1.0;
        let v = 2.0 * unit_open(rng) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// The Gamma distribution with the given shape and scale.
#[derive(Clone, Copy, Debug)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a Gamma distribution; errors on non-positive or non-finite
    /// parameters.
    pub fn new(shape: f64, scale: f64) -> Result<Gamma, Error> {
        if shape > 0.0 && scale > 0.0 && shape.is_finite() && scale.is_finite() {
            Ok(Gamma { shape, scale })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia–Tsang (2000). For shape < 1, sample at shape + 1 and
        // multiply by U^(1/shape).
        let boost = if self.shape < 1.0 {
            unit_open(rng).powf(1.0 / self.shape)
        } else {
            1.0
        };
        let a = if self.shape < 1.0 {
            self.shape + 1.0
        } else {
            self.shape
        };
        let d = a - 1.0 / 3.0;
        let c = 1.0 / (3.0 * d.sqrt());
        loop {
            let x = standard_normal(rng);
            let t = 1.0 + c * x;
            if t <= 0.0 {
                continue;
            }
            let v = t * t * t;
            let u = unit_open(rng);
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2
                || u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln())
            {
                return d * v * boost * self.scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gamma_moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(shape, scale) in &[(0.5, 2.0), (2.0, 3.0), (10.23, 0.49)] {
            let d = Gamma::new(shape, scale).unwrap();
            let n = 200_000;
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for _ in 0..n {
                let x = d.sample(&mut rng);
                assert!(x > 0.0);
                sum += x;
                sum_sq += x * x;
            }
            let mean = sum / n as f64;
            let var = sum_sq / n as f64 - mean * mean;
            let (m, v) = (shape * scale, shape * scale * scale);
            assert!((mean - m).abs() / m < 0.02, "mean {mean} vs {m}");
            assert!((var - v).abs() / v < 0.05, "var {var} vs {v}");
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
    }
}
