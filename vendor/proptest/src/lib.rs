//! Offline shim for the `proptest` crate.
//!
//! Supports exactly the API surface this workspace's property tests use:
//! the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), `prop_assert!` / `prop_assert_eq!`, the [`Strategy`] trait
//! with `prop_map`, integer and float range strategies, strategy tuples,
//! `prop::collection::vec`, and `prop::option::weighted`.
//!
//! Differences from the real crate: inputs are drawn from a fixed
//! deterministic stream (seeded from the test name), there is **no
//! shrinking** — a failing case panics with the generated inputs'
//! debug representation instead of a minimised one — and no failure
//! persistence. See `vendor/README.md`.

/// Failure raised by `prop_assert!`-style macros inside a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn new(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!`-block configuration. Only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count to actually run: the `PROPTEST_CASES` environment
    /// variable overrides whatever the test requested (mirroring the
    /// real crate), so CI can run elevated sweeps of the same suites.
    /// Invalid or zero values are ignored.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => match v.trim().parse::<u32>() {
                Ok(n) if n > 0 => n,
                _ => self.cases,
            },
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the suite quick while
        // still exercising plenty of inputs.
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! The deterministic generator driving input generation.

    /// SplitMix64 stream; deterministic for a given test name, so every
    //  run explores the same inputs (reproducible CI failures).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test's name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, so distinct tests get distinct streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A generator of test-case inputs.
///
/// Unlike the real crate there is no value tree: strategies produce
/// final values directly and nothing shrinks.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// String strategies from regex patterns, as in the real crate but
/// restricted to the one form this workspace uses: `.{lo,hi}` (any
/// non-newline chars, length in `[lo, hi]`). Other patterns panic.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repetition(self).unwrap_or_else(|| {
            panic!("proptest shim supports only `.{{lo,hi}}` string patterns, got {self:?}")
        });
        let len = lo + rng.below((hi - lo) as u64 + 1) as usize;
        (0..len).map(|_| arbitrary_char(rng)).collect()
    }
}

/// Parses `.{lo,hi}` into its bounds.
fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    (lo <= hi).then_some((lo, hi))
}

/// One char matching `.`: printable ASCII most of the time, with control
/// characters (sans `\n`) and non-ASCII code points mixed in so parsers
/// see genuinely hostile input.
fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0 => {
            // Control char, excluding newline.
            let c = rng.below(31) as u8; // 0..=30, skipping 0x0A below
            (if c == b'\n' { 0x0B } else { c }) as char
        }
        1 => loop {
            // Arbitrary scalar value outside ASCII.
            if let Some(c) = char::from_u32(0x80 + rng.below(0x10_F000 - 0x80) as u32) {
                if c != '\n' {
                    return c;
                }
            }
        },
        _ => (0x20 + rng.below(0x5F) as u8) as char, // printable ASCII
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};

    /// Generates `Vec`s of `elem` with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Generates `Some(inner)` with probability `p`, else `None`.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> WeightedOption<S> {
        WeightedOption { p, inner }
    }

    /// Strategy returned by [`weighted`].
    pub struct WeightedOption<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.unit_f64() < self.p {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! Everything the workspace's tests import with
    //! `use proptest::prelude::*;`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
    /// The `prop::` path alias (`prop::collection::vec`, ...).
    pub use crate as prop;
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each function body runs once per case; `prop_assert!` failures abort
/// that case with the generated inputs printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.resolved_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let strategy = ($($strat,)+);
            for case in 0..cases {
                let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                let inputs = format!(concat!($(stringify!($arg), " = {:?}; ",)+), $(&$arg,)+);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// `assert!` that reports through proptest's case machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::new(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through proptest's case machinery.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` that reports through proptest's case machinery.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated values respect their range bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..=9, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Vec lengths respect the size range; fixed sizes are exact.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0u64..10, 2..6), w in prop::collection::vec(0u64..10, 4usize)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
            prop_assert_eq!(w.len(), 4);
        }

        /// prop_map and option::weighted compose.
        #[test]
        fn map_and_option(p in prop::option::weighted(1.0, (1u32..3).prop_map(|n| n * 10))) {
            let v = p.expect("weight 1.0 always generates Some");
            prop_assert!(v == 10 || v == 20);
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let mut c = crate::test_runner::TestRng::for_test("u");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
