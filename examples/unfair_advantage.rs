//! The fairness question (Figure 4): what happens to users who do *not*
//! use redundant requests as more of their neighbours do?
//!
//! ```sh
//! cargo run --release --example unfair_advantage
//! RBR_SCALE=paper cargo run --release --example unfair_advantage
//! ```

use redundant_batch_requests::experiments::fig4;
use redundant_batch_requests::grid::Scheme;
use redundant_batch_requests::Scale;

fn main() {
    let scale = Scale::from_env(Scale::Quick);
    let mut config = fig4::Config::at_scale(scale);
    // The two schemes the paper's conclusion quotes.
    config.schemes = vec![Scheme::R(2), Scheme::All];
    eprintln!(
        "running Figure 4 sweep at {scale:?} scale: p ∈ {:?}, {} reps ...",
        config.fractions, config.reps
    );
    let rows = fig4::run(&config);
    println!("{}", fig4::render(&rows));

    // Summarize the headline comparison.
    let baseline = rows
        .iter()
        .find(|r| r.fraction == 0.0)
        .map(|r| r.stretch_nr)
        .unwrap_or(f64::NAN);
    println!("baseline (p = 0) average stretch: {baseline:.2}");
    for r in rows.iter().filter(|r| (r.fraction - 0.4).abs() < 1e-9) {
        println!(
            "{} at p = 40%: r jobs {:.2} ({:.0}% of baseline), n-r jobs {:.2} ({:+.0}% vs baseline)",
            r.scheme,
            r.stretch_r,
            r.stretch_r / baseline * 100.0,
            r.stretch_nr,
            (r.stretch_nr / baseline - 1.0) * 100.0,
        );
    }
}
