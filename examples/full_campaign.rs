//! Runs the complete reproduction campaign — every figure, every table,
//! every ablation — and prints the results in the order the paper
//! presents them. This is the one-command regeneration of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --example full_campaign                 # quick
//! RBR_SCALE=paper cargo run --release --example full_campaign # full 50×6h
//! ```

use std::time::Instant;

use redundant_batch_requests::experiments::{
    ablation, conclusion, dual_queue, fig1, fig3, fig4, fig5, forecast, moldable, queue_growth,
    table1, table2, table3, table4, trace_check,
};
use redundant_batch_requests::grid::Scheme;
use redundant_batch_requests::report::Table;
use redundant_batch_requests::Scale;

fn banner(name: &str) {
    println!("\n================ {name} ================");
}

fn main() {
    let scale = Scale::from_env(Scale::Quick);
    let t0 = Instant::now();
    eprintln!("running the full campaign at {scale:?} scale");

    banner("Figure 1 — relative average stretch vs number of clusters");
    let rows = fig1::run(&fig1::Config::at_scale(scale));
    println!("{}", fig1::render(&rows));
    println!("{}", fig1::render_plot(&rows));

    banner("Figure 2 — relative CV of stretches vs number of clusters");
    let mut t = Table::new(vec!["N", "scheme", "rel CV"]);
    for r in &rows {
        t.push(vec![r.n.to_string(), r.scheme.to_string(), format!("{:.3}", r.rel_cv)]);
    }
    println!("{}", t.render());

    banner("Table 1 — scheduling algorithms × estimate models");
    println!("{}", table1::render(&table1::run(&table1::Config::at_scale(scale))));

    banner("Table 2 — non-uniform redundant request distribution");
    println!("{}", table2::render(&table2::run(&table2::Config::at_scale(scale))));

    banner("Figure 3 — relative stretch vs job interarrival time");
    println!("{}", fig3::render(&fig3::run(&fig3::Config::at_scale(scale))));

    banner("Table 3 — heterogeneous platforms");
    println!("{}", table3::render(&table3::run(&table3::Config::at_scale(scale))));

    banner("Figure 4 — r-jobs vs n-r jobs vs percentage using redundancy");
    println!("{}", fig4::render(&fig4::run(&fig4::Config::at_scale(scale))));

    banner("Figure 5 — scheduler throughput vs queue size");
    println!("{}", fig5::render(&fig5::run(&fig5::Config::at_scale(scale))));

    banner("Table 4 — queue-wait over-prediction");
    println!("{}", table4::render(&table4::run(&table4::Config::at_scale(scale))));

    banner("§4.1 — maximum queue size, ALL vs NONE");
    println!("{}", queue_growth::render(&queue_growth::run(&queue_growth::Config::at_scale(scale))));

    banner("Conclusion scenario — N = 20, 80% redundant");
    println!("{}", conclusion::render(&conclusion::run(&conclusion::Config::at_scale(scale))));

    banner("Ablation — offered-load regime (ALL)");
    println!(
        "{}",
        ablation::render(
            "load",
            &ablation::load_sweep(scale, Scheme::All, &[0.88, 0.95, 1.0, 1.05, 1.1, 1.2]),
        )
    );

    banner("Ablation — CBF scheduling cycle");
    println!(
        "{}",
        ablation::render("cycle", &ablation::cbf_cycle_sweep(scale, &[0.0, 30.0, 300.0]))
    );

    banner("Ablation — target-selection policy (R2)");
    println!("{}", ablation::render("policy", &ablation::selection_sweep(scale, Scheme::R(2))));

    banner("Ablation — §3.1.2 remote-request inflation (HALF)");
    println!("{}", ablation::render("inflation", &ablation::inflation_sweep(scale, Scheme::Half)));

    banner("Ablation — backfilling activity per scheme (the §3.3 mechanism)");
    println!("{}", ablation::render_backfills(&ablation::backfill_sweep(scale, 10)));

    banner("Extension — statistical wait forecasting under redundancy");
    println!("{}", forecast::render(&forecast::run(&forecast::Config::at_scale(scale))));

    banner("Extension — option (iv): moldable jobs, redundant shape requests");
    println!("{}", moldable::render(&moldable::run(&moldable::Config::at_scale(scale))));

    banner("Extension — option (iii): premium/standard dual-queue racing");
    println!("{}", dual_queue::render(&dual_queue::run(&dual_queue::Config::at_scale(scale))));

    banner("Cross-check — SWF trace replay (§3.1.1)");
    println!("{}", trace_check::render(&trace_check::run(&trace_check::Config::at_scale(scale))));

    eprintln!("\ncampaign finished in {:.1?} at {scale:?} scale", t0.elapsed());
}
