//! Runs the complete reproduction campaign — every experiment in the
//! registry, in paper order — and prints the results the way
//! EXPERIMENTS.md reports them, followed by two supplements (the Figure 1
//! ASCII plot and the backfilling-mechanism sweep) that live outside the
//! structured reports.
//!
//! ```sh
//! cargo run --release --example full_campaign                 # quick
//! RBR_SCALE=paper cargo run --release --example full_campaign # full 50×6h
//! ```

use std::time::Instant;

use redundant_batch_requests::experiments::{ablation, fig1, Registry};
use redundant_batch_requests::report::Format;
use redundant_batch_requests::Scale;

fn banner(name: &str) {
    println!("\n================ {name} ================");
}

fn main() {
    let scale = Scale::from_env(Scale::Quick);
    let t0 = Instant::now();
    eprintln!("running the full campaign at {} scale", scale.name());

    for exp in Registry::standard().iter() {
        banner(exp.description());
        println!(
            "{}",
            exp.run(scale, exp.default_seed()).render(Format::Text)
        );
    }

    banner("Supplement — Figure 1 as an ASCII plot");
    let rows = fig1::run(&fig1::Config::at_scale(scale));
    println!("{}", fig1::render_plot(&rows));

    banner("Supplement — backfilling activity per scheme (the §3.3 mechanism)");
    println!(
        "{}",
        ablation::render_backfills(&ablation::backfill_sweep(scale, 10, 56, None))
    );

    eprintln!(
        "\ncampaign finished in {:.1?} at {} scale",
        t0.elapsed(),
        scale.name()
    );
}
