//! The Figure 1 / Figure 2 campaign: relative average stretch and
//! relative fairness (CV of stretches) versus the number of clusters for
//! every redundant-request scheme.
//!
//! ```sh
//! cargo run --release --example grid_campaign            # quick scale
//! RBR_SCALE=paper cargo run --release --example grid_campaign
//! ```

use redundant_batch_requests::experiments::fig1;
use redundant_batch_requests::Scale;

fn main() {
    let scale = Scale::from_env(Scale::Quick);
    let config = fig1::Config::at_scale(scale);
    eprintln!(
        "running Figure 1/2 sweep at {scale:?} scale: N ∈ {:?}, {} schemes, {} reps ...",
        config.ns,
        config.schemes.len(),
        config.reps
    );
    let rows = fig1::run(&config);
    println!("{}", fig1::render(&rows));
    println!("Figure 1 reads column `rel stretch` (values < 1: redundancy beneficial).");
    println!("Figure 2 reads column `rel CV` (values < 1: schedule is fairer).");
}
