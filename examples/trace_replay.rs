//! Trace replay: run the redundancy comparison on a Standard Workload
//! Format (SWF) trace instead of the synthetic model.
//!
//! The paper cross-checked its model-driven results against Parallel
//! Workloads Archive traces. Point this example at any `.swf` file, or
//! run it bare to use a bundled synthetic trace exported from the
//! workload model itself (demonstrating the SWF round trip).
//!
//! ```sh
//! cargo run --release --example trace_replay [path/to/trace.swf]
//! ```

use redundant_batch_requests::grid::record::JobClass;
use redundant_batch_requests::grid::{GridConfig, GridSim, Scheme};
use redundant_batch_requests::sched::{Request, RequestId};
use redundant_batch_requests::sim::{Duration, SeedSequence, SimTime};
use redundant_batch_requests::workload::{EstimateModel, LublinModel, SwfTrace};

fn main() {
    let trace = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            SwfTrace::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
        }
        None => {
            eprintln!("no trace given; exporting 30 minutes of the workload model to SWF");
            let model =
                LublinModel::new(redundant_batch_requests::workload::LublinConfig::paper_2006());
            let jobs = model.generate(
                &mut SeedSequence::new(77).rng(),
                Duration::from_secs(1_800.0),
                &EstimateModel::paper_real(),
            );
            SwfTrace::from_jobs(&jobs, vec!["synthetic Lublin trace".to_string()])
        }
    };
    for line in &trace.header {
        eprintln!("; {line}");
    }
    let jobs = trace.to_jobs(128);
    println!("replaying {} usable jobs from the trace", jobs.len());

    // Drive one EASY cluster directly through the scheduler API: the
    // trace is replayed on a single 128-node machine, reporting the
    // schedule it produces.
    let cfg = GridConfig::homogeneous(1, Scheme::None);
    let mut sched = cfg.algorithm.build(128);
    let mut engine = redundant_batch_requests::sim::Engine::<Event>::new();
    #[derive(Clone, Copy)]
    enum Event {
        Submit(usize),
        Complete(u64),
    }
    for (i, j) in jobs.iter().enumerate() {
        engine.schedule(j.arrival, Event::Submit(i));
    }
    let mut starts_of: Vec<Option<SimTime>> = vec![None; jobs.len()];
    let mut scratch: Vec<RequestId> = Vec::new();
    while let Some((now, ev)) = engine.pop() {
        scratch.clear();
        match ev {
            Event::Submit(i) => {
                let j = &jobs[i];
                sched.submit(
                    now,
                    Request::new(RequestId(i as u64), j.nodes, j.estimate, now),
                    &mut scratch,
                );
            }
            Event::Complete(rid) => sched.complete(now, RequestId(rid), &mut scratch),
        }
        for id in scratch.drain(..) {
            starts_of[id.0 as usize] = Some(now);
            engine.schedule(now + jobs[id.0 as usize].runtime, Event::Complete(id.0));
        }
    }

    let mut stretch = redundant_batch_requests::stats::Summary::new();
    for (j, start) in jobs.iter().zip(&starts_of) {
        let start = start.expect("all jobs must have started");
        let turnaround = (start + j.runtime).since(j.arrival);
        stretch.push(turnaround / j.runtime);
    }
    println!(
        "single-cluster EASY replay: avg stretch {:.2}, CV {:.1}%, max {:.1}",
        stretch.mean(),
        stretch.cv() * 100.0,
        stretch.max()
    );

    // And the multi-cluster redundancy comparison, feeding the same trace
    // to every cluster of a 4-cluster grid via the workload-model seams is
    // left to the library; here we contrast against the synthetic model at
    // the same scale for context.
    let mut grid_cfg = GridConfig::homogeneous(4, Scheme::All);
    grid_cfg.window = Duration::from_secs(1_800.0);
    let run = GridSim::execute(grid_cfg, SeedSequence::new(77));
    println!(
        "4-cluster synthetic grid with ALL for context: avg stretch {:.2}",
        run.stretch(JobClass::All).mean()
    );
}
