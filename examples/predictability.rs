//! Section 5 / Table 4: how redundant requests degrade queue-waiting-time
//! predictions.
//!
//! Every cluster runs Conservative Backfilling, whose reservations give a
//! prediction at submit time; jobs request ×2.16 their real runtime on
//! average, so predictions are conservative to begin with — and redundant
//! churn makes them much worse.
//!
//! ```sh
//! cargo run --release --example predictability
//! RBR_SCALE=paper cargo run --release --example predictability
//! ```

use redundant_batch_requests::experiments::table4;
use redundant_batch_requests::Scale;

fn main() {
    let scale = Scale::from_env(Scale::Quick);
    let config = table4::Config::at_scale(scale);
    eprintln!(
        "running Table 4 at {scale:?} scale: N = {}, {} reps, window {} ...",
        config.n, config.reps, config.window
    );
    let rows = table4::run(&config);
    println!("{}", table4::render(&rows));
    println!("(`avg over-prediction` is predicted wait / effective wait; 1.0 would be exact.)");
    let base = rows[0].mean_ratio;
    for row in &rows[1..] {
        println!(
            "{}: over-prediction inflated {:.1}x vs the redundancy-free system",
            row.case,
            row.mean_ratio / base
        );
    }
}
