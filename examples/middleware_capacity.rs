//! Section 4: how much redundancy can the infrastructure take?
//!
//! Regenerates the Figure 5 throughput curve and walks through the
//! paper's capacity arithmetic: the batch scheduler tolerates about
//! r < 30 redundant requests per job at peak hours, but the 2006
//! WS-GRAM middleware saturates below r = 3.
//!
//! ```sh
//! cargo run --release --example middleware_capacity
//! ```

use redundant_batch_requests::experiments::fig5;
use redundant_batch_requests::middleware::{
    max_redundancy, pipeline, steady_state_load, Bottleneck, GramModel, PbsThroughputModel,
    PipelineConfig, SystemCapacity,
};
use redundant_batch_requests::sim::SeedSequence;
use redundant_batch_requests::Scale;

fn main() {
    let scale = Scale::from_env(Scale::Quick);

    println!("=== Figure 5: scheduler throughput vs queue size ===\n");
    let rows = fig5::run(&fig5::Config::at_scale(scale));
    println!("{}", fig5::render(&rows));

    println!("=== Section 4 capacity arithmetic (iat = 5 s peak hours) ===\n");
    let iat = 5.0;
    let pbs = PbsThroughputModel::openpbs_maui_2006();
    let pbs_rate = pbs.throughput(10_000);
    println!(
        "batch scheduler at 10,000 pending: {pbs_rate:.1} submissions+cancellations/s → r < {:.0}",
        max_redundancy(iat, pbs_rate)
    );
    let gram = GramModel::gt4_ws_gram();
    println!(
        "GT4 WS-GRAM: {:.1} transactions/min → {:.2} submissions/s → r < {:.1}",
        gram.transactions_per_minute,
        gram.submissions_per_sec(),
        max_redundancy(iat, 0.5)
    );

    let sys = SystemCapacity::paper_2006();
    let (bottleneck, rate) = sys.bottleneck();
    println!("\nfull-stack bottleneck: {bottleneck:?} at {rate:.2} submissions/s");
    println!(
        "system-wide sustainable redundancy at peak: r < {:.1}\n",
        sys.max_redundancy(iat)
    );
    for (component, r) in sys.max_redundancy_per_component(iat) {
        let marker = if component == bottleneck {
            "  <-- bottleneck"
        } else {
            ""
        };
        println!("  {component:?}: r < {r:.1}{marker}");
    }

    println!("\n=== steady-state request traffic per cluster ===\n");
    for r in [1.0, 2.0, 4.0, 10.0, 30.0] {
        let load = steady_state_load(r, iat);
        println!(
            "r = {r:2.0}: {:.2} submissions/s + {:.2} cancellations/s = {:.2} ops/s",
            load.submissions_per_sec,
            load.cancellations_per_sec,
            load.ops_per_sec()
        );
    }

    println!("\n=== end-to-end pipeline simulation (SOAP → WS-GRAM → scheduler) ===\n");
    for r in [1.0, 2.0, 2.5, 3.0, 4.0] {
        let result = pipeline::run(&PipelineConfig::paper_2006(r), SeedSequence::new(42));
        println!(
            "r = {r:.1}: mean latency {:8.1} s, backlog at window end {:5}, {}",
            result.latency.mean(),
            result.backlog,
            if result.sustainable {
                "sustainable"
            } else {
                "SATURATED"
            }
        );
    }

    println!("\n=== what a 2020s middleware would change ===\n");
    let mut modern = SystemCapacity::paper_2006();
    modern.middleware = GramModel::with_rate(6_000.0);
    let (b, _) = modern.bottleneck();
    assert_eq!(b, Bottleneck::Scheduler);
    println!(
        "with a 100 tx/s middleware the bottleneck moves to the {b:?}: r < {:.0}",
        modern.max_redundancy(iat)
    );
}
