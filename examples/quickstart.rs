//! Quickstart: simulate one multi-cluster platform with and without
//! redundant batch requests and compare what jobs experience.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use redundant_batch_requests::grid::record::JobClass;
use redundant_batch_requests::grid::{GridConfig, GridSim, Scheme};
use redundant_batch_requests::sim::{Duration, SeedSequence};

fn main() {
    // Four identical 128-node clusters, EASY backfilling, the calibrated
    // Lublin workload, one hour of job submissions per cluster.
    let mut base = GridConfig::homogeneous(4, Scheme::None);
    base.window = Duration::from_hours(1);
    let seed = SeedSequence::new(2006);

    println!(
        "simulating {} clusters, 1 hour of submissions...\n",
        base.n_clusters()
    );

    // Baseline: everyone submits to their local cluster only.
    let none = GridSim::execute(base.clone(), seed);

    // Treatment: every job submits a copy to every cluster and cancels
    // the losers the moment one starts.
    let mut redundant = base.clone();
    redundant.scheme = Scheme::All;
    let all = GridSim::execute(redundant, seed); // same seed → same jobs

    let s0 = none.stretch(JobClass::All);
    let s1 = all.stretch(JobClass::All);
    println!("jobs simulated        : {}", none.records.len());
    println!(
        "scheme NONE           : avg stretch {:6.2}, CV {:5.1}%, max {:7.1}",
        s0.mean(),
        s0.cv() * 100.0,
        s0.max()
    );
    println!(
        "scheme ALL            : avg stretch {:6.2}, CV {:5.1}%, max {:7.1}",
        s1.mean(),
        s1.cv() * 100.0,
        s1.max()
    );
    println!(
        "relative avg stretch  : {:.3}  (< 1 means redundancy helped)",
        s1.mean() / s0.mean()
    );
    println!("relative CV (fairness): {:.3}", s1.cv() / s0.cv());
    println!();
    println!(
        "request traffic under ALL: {} submissions, {} cancellations, {} same-instant aborts",
        all.submits, all.cancels, all.aborts
    );
    let migrated = all.records.iter().filter(|r| r.ran_on != r.home).count();
    println!(
        "{} of {} jobs ended up running away from their home cluster",
        migrated,
        all.records.len()
    );
}
