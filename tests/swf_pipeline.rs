//! Integration of the SWF trace substrate with the schedulers: a trace
//! exported from the workload model replays to the same schedule as the
//! original jobs.

use redundant_batch_requests::sched::{Algorithm, Request, RequestId};
use redundant_batch_requests::sim::{Duration, Engine, SeedSequence, SimTime};
use redundant_batch_requests::workload::{
    EstimateModel, JobSpec, LublinConfig, LublinModel, SwfTrace,
};

/// Drives one cluster with the given jobs and returns each job's start.
fn replay(jobs: &[JobSpec], alg: Algorithm) -> Vec<SimTime> {
    #[derive(Clone, Copy)]
    enum Ev {
        Submit(usize),
        Complete(u64),
    }
    let mut sched = alg.build(128);
    let mut engine: Engine<Ev> = Engine::new();
    for (i, j) in jobs.iter().enumerate() {
        engine.schedule(j.arrival, Ev::Submit(i));
    }
    let mut starts = vec![SimTime::MAX; jobs.len()];
    let mut scratch: Vec<RequestId> = Vec::new();
    while let Some((now, ev)) = engine.pop() {
        scratch.clear();
        match ev {
            Ev::Submit(i) => sched.submit(
                now,
                Request::new(RequestId(i as u64), jobs[i].nodes, jobs[i].estimate, now),
                &mut scratch,
            ),
            Ev::Complete(rid) => sched.complete(now, RequestId(rid), &mut scratch),
        }
        for id in scratch.drain(..) {
            starts[id.0 as usize] = now;
            engine.schedule(now + jobs[id.0 as usize].runtime, Ev::Complete(id.0));
        }
    }
    assert!(
        starts.iter().all(|&s| s != SimTime::MAX),
        "all jobs started"
    );
    starts
}

fn model_jobs(minutes: f64) -> Vec<JobSpec> {
    let model = LublinModel::new(LublinConfig::paper_2006());
    model.generate(
        &mut SeedSequence::new(500).rng(),
        Duration::from_secs(minutes * 60.0),
        &EstimateModel::paper_real(),
    )
}

#[test]
fn swf_roundtrip_preserves_the_schedule() {
    let jobs = model_jobs(20.0);
    let trace = SwfTrace::from_jobs(&jobs, vec!["roundtrip test".into()]);
    let parsed = SwfTrace::parse(&trace.to_swf()).expect("self-produced SWF parses");
    let back = parsed.to_jobs(128);
    // `to_jobs` re-bases arrivals so the first job lands at t = 0; apply
    // the same shift to the originals before comparing.
    let t0 = jobs[0].arrival;
    let shifted: Vec<JobSpec> = jobs
        .iter()
        .map(|j| {
            JobSpec::new(
                SimTime::ZERO + j.arrival.since(t0),
                j.nodes,
                j.runtime,
                j.estimate,
            )
        })
        .collect();
    assert_eq!(back, shifted, "SWF roundtrip must be lossless");

    for alg in Algorithm::all() {
        let original = replay(&shifted, alg);
        let roundtripped = replay(&back, alg);
        assert_eq!(original, roundtripped, "{alg} schedules must agree");
    }
}

#[test]
fn swf_header_survives() {
    let jobs = model_jobs(5.0);
    let trace = SwfTrace::from_jobs(&jobs, vec!["Computer: rbr".into(), "MaxNodes: 128".into()]);
    let parsed = SwfTrace::parse(&trace.to_swf()).unwrap();
    assert_eq!(parsed.header.len(), 2);
    assert!(parsed.header[1].contains("128"));
}

#[test]
fn easy_beats_fcfs_on_the_same_trace() {
    // A cross-algorithm sanity check on identical input: backfilling can
    // only improve average waiting time on a backlogged trace.
    let jobs = model_jobs(45.0);
    let easy = replay(&jobs, Algorithm::Easy);
    let fcfs = replay(&jobs, Algorithm::Fcfs);
    let wait = |starts: &[SimTime]| -> f64 {
        jobs.iter()
            .zip(starts)
            .map(|(j, s)| s.since(j.arrival).as_secs())
            .sum::<f64>()
            / jobs.len() as f64
    };
    assert!(
        wait(&easy) <= wait(&fcfs),
        "EASY {} vs FCFS {}",
        wait(&easy),
        wait(&fcfs)
    );
}
