//! The paper's qualitative claims, asserted at reduced scale.
//!
//! These use small platforms and short windows so the whole file runs in
//! seconds, with margins wide enough to be seed-robust; EXPERIMENTS.md
//! holds the quantitative quick/paper-scale comparisons.

use redundant_batch_requests::experiments::{conclusion, fig5, queue_growth, table4};
use redundant_batch_requests::grid::record::JobClass;
use redundant_batch_requests::grid::{GridConfig, GridSim, Scheme};
use redundant_batch_requests::middleware::{max_redundancy, GramModel, PbsThroughputModel};
use redundant_batch_requests::sim::{Duration, SeedSequence};
use redundant_batch_requests::Scale;

fn avg_rel_stretch(n: usize, scheme: Scheme, reps: u64, minutes: f64) -> f64 {
    let mut acc = 0.0;
    for rep in 0..reps {
        let seed = SeedSequence::new(1000 + rep);
        let mut base = GridConfig::homogeneous(n, Scheme::None);
        base.window = Duration::from_secs(minutes * 60.0);
        let mut treat = base.clone();
        treat.scheme = scheme;
        let b = GridSim::execute(base, seed).stretch(JobClass::All).mean();
        let t = GridSim::execute(treat, seed).stretch(JobClass::All).mean();
        acc += t / b;
    }
    acc / reps as f64
}

/// §3.3 headline: redundant requests improve the average stretch on
/// platforms bigger than a handful of clusters.
#[test]
fn redundancy_improves_stretch_on_medium_platform() {
    let rel = avg_rel_stretch(8, Scheme::R(2), 3, 60.0);
    assert!(rel < 1.0, "relative stretch {rel} should be below 1");
}

/// §3.3: the benefit comes from load balancing — jobs migrate away from
/// their home clusters.
#[test]
fn redundant_jobs_actually_migrate() {
    let mut cfg = GridConfig::homogeneous(5, Scheme::All);
    cfg.window = Duration::from_secs(1_800.0);
    let run = GridSim::execute(cfg, SeedSequence::new(1100));
    let migrated = run.records.iter().filter(|r| r.ran_on != r.home).count();
    assert!(
        migrated * 5 > run.records.len(),
        "at least 20% of ALL-scheme jobs should run remotely, got {migrated}/{}",
        run.records.len()
    );
}

/// Figure 4's core asymmetry: within a mixed population, the jobs using
/// redundancy beat the jobs not using it.
#[test]
fn r_jobs_beat_nr_jobs() {
    let mut cfg = GridConfig::homogeneous(6, Scheme::All);
    cfg.redundant_fraction = 0.4;
    cfg.window = Duration::from_secs(3_600.0);
    let run = GridSim::execute(cfg, SeedSequence::new(1200));
    let r = run.stretch(JobClass::Redundant).mean();
    let nr = run.stretch(JobClass::NonRedundant).mean();
    assert!(r < nr, "r-jobs {r} should beat n-r jobs {nr}");
}

/// The conclusion scenario at smoke scale: r-jobs see roughly half the
/// stretch of n-r jobs (the paper quotes "on average half").
#[test]
fn conclusion_scenario_shows_the_advantage() {
    let mut cfg = conclusion::Config::at_scale(Scale::Smoke);
    cfg.n = 6;
    cfg.schemes = vec![Scheme::All];
    cfg.reps = 3;
    cfg.window = Duration::from_secs(1_800.0);
    let rows = conclusion::run(&cfg);
    assert!(rows[0].r_vs_nr < 0.9, "r_vs_nr = {}", rows[0].r_vs_nr);
}

/// Section 4's two capacity bounds, as stated.
#[test]
fn capacity_bounds_match_paper() {
    let pbs = PbsThroughputModel::openpbs_maui_2006();
    let r_sched = max_redundancy(5.0, pbs.throughput(10_000));
    assert!((29.0..31.0).contains(&r_sched), "scheduler bound {r_sched}");

    let gram = GramModel::gt4_ws_gram();
    assert!(gram.transactions_per_sec() < 1.0);
    let r_gram = max_redundancy(5.0, 0.5);
    assert!(r_gram < 3.0, "middleware bound {r_gram}");
}

/// Figure 5's endpoints: ≈11 pairs/s empty, ≈5 at 20 000 pending, with
/// monotone decay in between.
#[test]
fn figure5_curve_has_paper_endpoints() {
    let rows = fig5::run(&fig5::Config::at_scale(Scale::Smoke));
    assert!((10.0..12.0).contains(&rows.first().unwrap().average));
    assert!((4.5..6.0).contains(&rows.last().unwrap().average));
    for w in rows.windows(2) {
        assert!(w[0].average > w[1].average, "decay must be monotone");
    }
}

/// Table 4's direction: with real estimates, CBF over-predicts queue
/// waits, and redundant churn makes the n-r jobs' predictions worse.
#[test]
fn overprediction_increases_with_redundant_churn() {
    let mut cfg = table4::Config::at_scale(Scale::Smoke);
    cfg.n = 3;
    cfg.window = Duration::from_secs(1_800.0);
    let rows = table4::run(&cfg);
    assert!(rows[0].mean_ratio > 1.0);
    assert!(rows[1].mean_ratio > rows[0].mean_ratio);
}

/// §4.1: redundant requests do not change the number of *jobs* in the
/// system — they multiply the number of *requests*. We assert the
/// request-side identity and report the queue-size ratio (discussed in
/// EXPERIMENTS.md).
#[test]
fn queue_growth_measurement_runs() {
    let mut cfg = queue_growth::Config::at_scale(Scale::Smoke);
    cfg.n = 3;
    cfg.reps = 2;
    let out = queue_growth::run(&cfg);
    assert!(out.submits_ratio > 1.5, "ALL must multiply submissions");
    assert!(out.ratio.is_finite() && out.ratio > 0.0);
}
