//! Cross-crate integration tests: the full workload → scheduler → grid
//! pipeline, checked against global physical invariants.

use std::collections::HashMap;

use redundant_batch_requests::grid::record::JobClass;
use redundant_batch_requests::grid::{ClusterSpec, GridConfig, GridSim, Scheme};
use redundant_batch_requests::sched::Algorithm;
use redundant_batch_requests::sim::{Duration, SeedSequence, SimTime};
use redundant_batch_requests::workload::LublinConfig;

fn config(n: usize, scheme: Scheme, minutes: f64) -> GridConfig {
    let mut cfg = GridConfig::homogeneous(n, scheme);
    cfg.window = Duration::from_secs(minutes * 60.0);
    cfg
}

/// Replays the per-job records as a timeline and asserts that the number
/// of busy nodes never exceeds any cluster's capacity at any instant.
fn assert_capacity_respected(cfg: &GridConfig, run: &redundant_batch_requests::grid::RunResult) {
    // Events: +nodes at start, −nodes at completion, per cluster.
    let mut events: Vec<(SimTime, usize, i64)> = Vec::new();
    for r in &run.records {
        events.push((r.start, r.ran_on, r.nodes as i64));
        events.push((r.completion, r.ran_on, -(r.nodes as i64)));
    }
    // Completions at the same instant free nodes before new starts claim
    // them, so sort negatives first within a timestamp.
    events.sort_by_key(|&(t, c, d)| (t, c, d));
    let mut busy: HashMap<usize, i64> = HashMap::new();
    for (t, c, d) in events {
        let b = busy.entry(c).or_insert(0);
        *b += d;
        let cap = cfg.clusters[c].nodes as i64;
        assert!(*b >= 0 && *b <= cap, "cluster {c} busy {b}/{cap} at {t}");
    }
}

#[test]
fn capacity_never_exceeded_for_any_algorithm_or_scheme() {
    for alg in Algorithm::all() {
        for scheme in [Scheme::None, Scheme::R(2), Scheme::All] {
            let mut cfg = config(3, scheme, 20.0);
            cfg.algorithm = alg;
            let run = GridSim::execute(cfg.clone(), SeedSequence::new(100));
            assert!(!run.records.is_empty());
            assert_capacity_respected(&cfg, &run);
        }
    }
}

#[test]
fn capacity_respected_on_heterogeneous_platform() {
    let cfg = GridConfig {
        clusters: vec![
            ClusterSpec::new(16, LublinConfig::paper_2006().with_mean_interarrival(12.0)),
            ClusterSpec::new(64, LublinConfig::paper_2006().with_mean_interarrival(7.0)),
            ClusterSpec::new(256, LublinConfig::paper_2006().with_mean_interarrival(4.0)),
        ],
        window: Duration::from_secs(1_200.0),
        ..GridConfig::homogeneous(3, Scheme::All)
    };
    let run = GridSim::execute(cfg.clone(), SeedSequence::new(101));
    assert_capacity_respected(&cfg, &run);
    // No job ran on a cluster too small for it.
    for r in &run.records {
        assert!(r.nodes <= cfg.clusters[r.ran_on].nodes);
    }
}

#[test]
fn every_job_runs_exactly_once_and_in_order() {
    let run = GridSim::execute(config(4, Scheme::Half, 30.0), SeedSequence::new(102));
    for (j, r) in run.records.iter().enumerate() {
        assert_eq!(r.job, j, "records are indexed by job");
        assert!(r.start >= r.arrival, "job {j} started before arriving");
        assert_eq!(r.completion, r.start + r.runtime);
    }
}

#[test]
fn single_cluster_grid_is_immune_to_schemes() {
    // With one cluster there are no remote targets: every scheme
    // degenerates to NONE bit-for-bit.
    let none = GridSim::execute(config(1, Scheme::None, 30.0), SeedSequence::new(103));
    let all = GridSim::execute(config(1, Scheme::All, 30.0), SeedSequence::new(103));
    assert_eq!(none.records, all.records);
    assert_eq!(all.cancels, 0);
}

#[test]
fn accounting_identities_hold() {
    let run = GridSim::execute(config(4, Scheme::All, 30.0), SeedSequence::new(104));
    let jobs = run.records.len() as u64;
    // Each submitted request is eventually exactly one of: the winning
    // start, a cancellation, or an aborted same-instant start.
    assert_eq!(run.submits, jobs + run.cancels + run.aborts);
    // Makespan covers the last completion.
    let last = run
        .records
        .iter()
        .map(|r| r.completion)
        .max()
        .expect("non-empty");
    assert_eq!(run.makespan, last);
}

#[test]
fn turnaround_and_stretch_metrics_are_consistent() {
    let run = GridSim::execute(config(3, Scheme::R(2), 30.0), SeedSequence::new(105));
    let s = run.stretch(JobClass::All);
    assert!(s.min() >= 1.0 - 1e-12, "stretch below 1: {}", s.min());
    // Stretch and turnaround agree job by job.
    for r in &run.records {
        let stretch = r.stretch();
        let recomputed = r.turnaround().as_secs() / r.runtime.as_secs();
        assert!((stretch - recomputed).abs() < 1e-9);
    }
}

#[test]
fn exact_estimates_make_cbf_and_grid_agree_on_conservatism() {
    // Under CBF with exact estimates and no redundancy, every prediction
    // made at submit time is an upper bound that is met exactly or
    // beaten (compression may pull starts earlier, never later).
    let mut cfg = config(2, Scheme::None, 20.0);
    cfg.algorithm = Algorithm::Cbf;
    cfg.collect_predictions = true;
    let run = GridSim::execute(cfg, SeedSequence::new(106));
    for r in &run.records {
        let predicted = r.predicted_wait.expect("predictions collected");
        assert!(
            r.wait() <= predicted + Duration::from_secs(1.0),
            "job {} waited {} > predicted {}",
            r.job,
            r.wait(),
            predicted
        );
    }
}

#[test]
fn deterministic_across_thread_counts() {
    // The simulation itself is single-threaded per run; this asserts the
    // experiment pipeline (which may run cells in parallel) produces identical
    // numbers regardless of parallelism, because seeds are hierarchical.
    let run1 = GridSim::execute(config(3, Scheme::All, 20.0), SeedSequence::new(107));
    let run2 = GridSim::execute(config(3, Scheme::All, 20.0), SeedSequence::new(107));
    assert_eq!(run1.records, run2.records);
    assert_eq!(run1.events, run2.events);
}
